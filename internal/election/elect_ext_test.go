package election_test

import (
	"fmt"
	"testing"

	"detobj/internal/election"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// TestElectProgram: k-set election solved by proposing identifiers to a
// set-consensus object (§2's equivalence, solving direction). This lives
// in an external test package because setconsensus transitively imports
// election.
func TestElectProgram(t *testing.T) {
	const n, k = 4, 2
	for seed := int64(0); seed < 100; seed++ {
		objects := map[string]sim.Object{"SC": setconsensus.NewObject(n, k)}
		ref := setconsensus.Ref{Name: "SC"}
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			inputs[i] = i
			progs[i] = election.ElectProgram(ref, i)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			Seed:      seed,
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := (tasks.Election{K: k}).Check(o); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestProposerInterfaceSatisfied documents that setconsensus.Ref satisfies
// election.Proposer.
func TestProposerInterfaceSatisfied(t *testing.T) {
	var _ election.Proposer = setconsensus.Ref{}
}

// TestConsensusFromElection (§2, the other direction): k-set consensus
// built from a k-set election source plus announce registers. Validity and
// k-agreement hold because at most k leaders are elected and every leader
// announced its proposal before electing.
func TestConsensusFromElection(t *testing.T) {
	const n, k = 5, 2
	task := tasks.SetConsensus{K: k}
	for seed := int64(0); seed < 100; seed++ {
		objects := map[string]sim.Object{"SC": setconsensus.NewObject(n, k)}
		source := setconsensus.Ref{Name: "SC"}
		red := election.NewConsensusFromElection(objects, "CE", n, source)
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("val%d", i)
			inputs[i] = v
			progs[i] = red.Program(i, v)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			Seed:      seed * 3,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: %v", seed, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestConsensusFromElectionCrash: the reduction stays wait-free for
// survivors under crashes.
func TestConsensusFromElectionCrash(t *testing.T) {
	const n, k = 4, 2
	for _, crashed := range [][]int{{0}, {3}, {1, 2}} {
		for seed := int64(0); seed < 20; seed++ {
			objects := map[string]sim.Object{"SC": setconsensus.NewObject(n, k)}
			red := election.NewConsensusFromElection(objects, "CE", n, setconsensus.Ref{Name: "SC"})
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, n)
			for i := 0; i < n; i++ {
				v := fmt.Sprintf("val%d", i)
				inputs[i] = v
				progs[i] = red.Program(i, v)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewCrashing(sim.NewRandom(seed), crashed...),
				Seed:      seed,
			})
			if err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
			o := tasks.OutcomeFromResult(res, inputs)
			if err := (tasks.SetConsensus{K: k}).Check(o); err != nil {
				t.Fatalf("crashed=%v seed=%d: %v", crashed, seed, err)
			}
		}
	}
}
