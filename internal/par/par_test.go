package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		hits := make([]int32, n)
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Errors at many indices; the reported one must always be the lowest,
	// regardless of worker count or scheduling.
	for _, workers := range []int{1, 2, 5, 16} {
		err := ForEach(400, workers, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
	}
}

func TestForEachCompletesPrefixBeforeError(t *testing.T) {
	// Every index below the failing one must have completed.
	const n, bad = 1000, 700
	done := make([]int32, n)
	err := ForEach(n, 8, func(i int) error {
		if i == bad {
			return errors.New("boom")
		}
		atomic.AddInt32(&done[i], 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < bad; i++ {
		if atomic.LoadInt32(&done[i]) != 1 {
			t.Fatalf("index %d below failure did not complete", i)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(0, 100); got != Default() {
		t.Errorf("Normalize(0, 100) = %d, want Default() = %d", got, Default())
	}
	if got := Normalize(8, 3); got != 3 {
		t.Errorf("Normalize(8, 3) = %d, want 3", got)
	}
	if got := Normalize(-1, 0); got != 1 {
		t.Errorf("Normalize(-1, 0) = %d, want 1", got)
	}
}
