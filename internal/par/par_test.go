package par

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		hits := make([]int32, n)
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Errors at many indices; the reported one must always be the lowest,
	// regardless of worker count or scheduling.
	for _, workers := range []int{1, 2, 5, 16} {
		err := ForEach(400, workers, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: err = %v, want fail@3", workers, err)
		}
	}
}

func TestForEachCompletesPrefixBeforeError(t *testing.T) {
	// Every index below the failing one must have completed.
	const n, bad = 1000, 700
	done := make([]int32, n)
	err := ForEach(n, 8, func(i int) error {
		if i == bad {
			return errors.New("boom")
		}
		atomic.AddInt32(&done[i], 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < bad; i++ {
		if atomic.LoadInt32(&done[i]) != 1 {
			t.Fatalf("index %d below failure did not complete", i)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(0, 100); got != Default() {
		t.Errorf("Normalize(0, 100) = %d, want Default() = %d", got, Default())
	}
	if got := Normalize(8, 3); got != 3 {
		t.Errorf("Normalize(8, 3) = %d, want 3", got)
	}
	if got := Normalize(-1, 0); got != 1 {
		t.Errorf("Normalize(-1, 0) = %d, want 1", got)
	}
}

func TestForEachPanicSurfacesWithoutDeadlock(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		func() {
			defer func() {
				r := recover()
				if r != "boom-3" {
					t.Fatalf("workers=%d: recovered %v, want boom-3", workers, r)
				}
			}()
			ForEach(10, workers, func(i int) error {
				if i == 3 {
					panic("boom-3")
				}
				return nil
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachPanicRanksAgainstErrors(t *testing.T) {
	// An error below the panicking index wins: ForEach returns the error
	// and swallows nothing — the panic lost the race by index, exactly
	// as a sequential loop stopping at the first failure never reaches
	// the panicking iteration.
	errLow := errors.New("low")
	err := ForEach(10, 4, func(i int) error {
		if i == 1 {
			return errLow
		}
		if i == 8 {
			panic("high")
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the index-1 error", err)
	}
}

// TestForEachFailureSemanticsProperty drives randomized failure sets —
// errors and panics mixed across random indices, worker counts, and
// sizes — and checks the sequential contract every time: the surfaced
// failure is the one at the LOWEST failing index, as a panic when that
// index panicked and as the returned error otherwise, and every index
// below it has run to completion.
func TestForEachFailureSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		workers := 1 + rng.Intn(9)
		// mode per index: 0 = ok, 1 = error, 2 = panic.
		modes := make([]int, n)
		lowest := -1
		for i := range modes {
			if rng.Intn(4) == 0 {
				modes[i] = 1 + rng.Intn(2)
				if lowest == -1 {
					lowest = i
				}
			}
		}
		ran := make([]int32, n)
		var surfacedErr error
		var surfacedPanic any
		func() {
			defer func() { surfacedPanic = recover() }()
			surfacedErr = ForEach(n, workers, func(i int) error {
				defer atomic.AddInt32(&ran[i], 1)
				switch modes[i] {
				case 1:
					return fmt.Errorf("err-%d", i)
				case 2:
					panic(fmt.Sprintf("panic-%d", i))
				}
				return nil
			})
		}()
		switch {
		case lowest == -1:
			if surfacedErr != nil || surfacedPanic != nil {
				t.Fatalf("trial %d: clean run surfaced err=%v panic=%v", trial, surfacedErr, surfacedPanic)
			}
		case modes[lowest] == 1:
			want := fmt.Sprintf("err-%d", lowest)
			if surfacedPanic != nil || surfacedErr == nil || surfacedErr.Error() != want {
				t.Fatalf("trial %d (n=%d w=%d): err=%v panic=%v, want error %q",
					trial, n, workers, surfacedErr, surfacedPanic, want)
			}
		default:
			want := fmt.Sprintf("panic-%d", lowest)
			if surfacedErr != nil || surfacedPanic != want {
				t.Fatalf("trial %d (n=%d w=%d): err=%v panic=%v, want panic %q",
					trial, n, workers, surfacedErr, surfacedPanic, want)
			}
		}
		if lowest >= 0 {
			for i := 0; i < lowest; i++ {
				if atomic.LoadInt32(&ran[i]) != 1 {
					t.Fatalf("trial %d: index %d below failing index %d ran %d times",
						trial, i, lowest, ran[i])
				}
			}
		}
	}
}
