// Package par is the repository's deterministic worker-pool substrate.
// The workloads it serves — exhaustive exploration, seed sweeps, soak
// campaigns — are embarrassingly parallel *and* determinism-critical:
// every caller's observable output must be a pure function of its
// inputs, never of goroutine arrival order. The package therefore
// provides exactly one parallel shape, an indexed for-loop, and fixes
// its semantics so that callers cannot observe scheduling:
//
//   - work is identified by index, so results live in caller-owned
//     per-index slots (no shared accumulation unless the caller's
//     aggregation is commutative);
//   - the returned error is the one raised at the LOWEST index, exactly
//     what a sequential loop that stops at the first failure reports;
//   - after any error the remaining indices are cancelled on a
//     best-effort basis, but indices below the failing one always run
//     to completion, so "everything before the reported failure" is
//     fully populated;
//   - a panicking fn never deadlocks the pool: the panic is recovered
//     in the worker, ranked like an error at its index, and the
//     lowest-index failure — panic or error — wins; when a panic wins,
//     ForEach re-panics with the original value on the caller's
//     goroutine, matching what the sequential loop would have done.
//
// Thread-safety contract for callers: fn(i) and fn(j) run concurrently,
// so each index must touch only its own slot plus data that is
// read-only for the duration of the loop (see the sim package's
// "Concurrency contract" for what that means for simulator runs). The
// slot/merge/sink/seed halves of this contract are machine-checked by
// detlint's parallel-determinism rules — slotdiscipline, mergeorder,
// sharedsink, seedflow (see README.md "Static analysis").
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// panicError carries a recovered panic value through the pool's
// lowest-index-wins error ranking. Pointer-shaped on purpose: storing
// it in the error interface allocates nothing beyond the value itself.
type panicError struct {
	val any
}

func (p *panicError) Error() string { return fmt.Sprintf("par: worker panic: %v", p.val) }

// run executes fn(i), converting a panic into a *panicError so the
// pool's ranking machinery can treat it as a failure at that index.
func run(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r}
		}
	}()
	return fn(i)
}

// Default returns the default worker count: GOMAXPROCS, the number of
// OS threads that can execute Go code simultaneously. Sweeps are CPU
// bound, so more workers than that only adds scheduling noise.
func Default() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a worker-count flag or parameter: values <= 0 mean
// Default(), and the count never exceeds n (spawning more workers than
// work items is pure overhead).
func Normalize(workers, n int) int {
	if workers <= 0 {
		workers = Default()
	}
	if n >= 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across the given number of
// workers (<= 0 means Default()) and blocks until all spawned work has
// finished. Indices are handed out in increasing order.
//
// Error semantics are sequential: ForEach returns the error produced at
// the lowest index, and on the first error it stops handing out indices
// above the failing one, so the result is independent of which worker
// ran what. Every index below the lowest failing index is guaranteed to
// have completed; indices above it may or may not have run.
//
// A panic in fn is recovered in the worker (the pool never deadlocks
// on a panicking body), ranked against errors by index, and — when the
// panic holds the lowest failing index — re-raised with its original
// value on the calling goroutine once all workers have drained.
//
// With workers == 1 ForEach degenerates to a plain loop on the calling
// goroutine — no goroutines, no synchronization — so sequential
// baselines pay nothing.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to hand out
		failed   atomic.Int64 // lowest failing index + 1 (0 = none), monotone
		mu       sync.Mutex
		firstI   int = n // lowest failing index seen so far
		firstErr error
		wg       sync.WaitGroup
	)
	// bound() is the first index we can prove need not run: once an
	// error exists at index e, indices > e are cancellable, but indices
	// <= e must still complete to preserve sequential semantics.
	bound := func() int64 {
		if f := failed.Load(); f != 0 {
			return f // == failing index + 1
		}
		return int64(n)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//detlint:allow nodeterminism worker pool: indices are handed out by an atomic counter and every observable result is keyed by index (lowest-error-wins), so the outcome is independent of goroutine interleaving
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= bound() {
					return
				}
				if err := run(fn, int(i)); err != nil {
					mu.Lock()
					if int(i) < firstI {
						firstI, firstErr = int(i), err
					}
					mu.Unlock()
					// Publish the lowest known failing index so other
					// workers stop starting work above it.
					for {
						f := failed.Load()
						if f != 0 && f <= i+1 {
							break
						}
						if failed.CompareAndSwap(f, i+1) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	// A panic that won the lowest-index race surfaces as a panic on the
	// caller's goroutine, exactly as the sequential loop would have
	// panicked at that index.
	if pe, ok := firstErr.(*panicError); ok {
		panic(pe.val)
	}
	return firstErr
}
