package chaos

// Simulator-side adversaries. Each is a sim.Scheduler that wraps an
// inner scheduler (nil defaults to round-robin), perturbs which enabled
// process advances, and records every fault into a shared Report. All
// of them implement sim.Observer and forward observations inward, and
// forward sim.FaultInjector consultations inward the same way, so
// stacks compose: Instrument(NewStall(NewCrashRestart(...), ...), r).
//
// The package distinguishes three crash models, in increasing recovery
// strength:
//
//   - Crash-stop (CrashDuringOp here; sim.Crashing for the plain
//     variant): the paper's crash-failure adversary. A crashed process
//     simply never takes another step; its partial writes stay visible,
//     its pending invocation ends the run as StatusStopped, and no other
//     process can distinguish the crash from slowness.
//
//   - Amnesiac crash-restart (CrashRestart, RepeatedCrashRestart and
//     AdaptiveRestart, in restart.go): the individual-crash-restart
//     model of the recoverable-objects literature. The victim loses all
//     volatile state — program locals, its in-flight invocation, the
//     volatile half of sim.Recoverable objects — and re-enters from the
//     top of its program behind sim.Config.Recovery. These adversaries
//     issue real sim.Fault directives through the sim.FaultInjector
//     interface; the runtime applies them between steps and records them
//     in the trace, so crash-restart schedules replay exactly.
//
//   - Full-persistence recovery (CrashRecovery): the victim re-enters
//     with its id and entire local state intact and resumes from its
//     pending invocation — the strongest recovery model in the
//     recoverable-consensus literature. Because nothing is lost, a
//     crashed-and-recovered process is indistinguishable from a merely
//     slow one, which is why this adversary needs no fault directives:
//     it is expressible purely as a scheduling delay.
//
// The full-persistence and amnesiac models bracket the recoverable-
// consensus-number question (Ovens 2024, PAPERS.md): an object keeps its
// full-persistence power by construction, while its power under amnesiac
// restart depends on which half of its implementation state is durable —
// E20 (cmd/modelcheck) calibrates exactly this gap.

import (
	"fmt"
	"math/rand"

	"detobj/internal/sim"
)

// inner returns s, defaulting to round-robin.
func innerOf(s sim.Scheduler) sim.Scheduler {
	if s == nil {
		return sim.NewRoundRobin()
	}
	return s
}

// forwardObserve passes an observed event to s if it observes.
func forwardObserve(s sim.Scheduler, e sim.Event) {
	if o, ok := s.(sim.Observer); ok {
		o.Observe(e)
	}
}

// forwardFaults passes the fault consultation to s if it injects. Every
// wrapper adversary delegates through here so that a fault-issuing layer
// (restart.go) keeps its sim.FaultInjector channel when wrapped by
// Instrument, Stall or another adversary.
func forwardFaults(s sim.Scheduler, v sim.View) []sim.Fault {
	if fi, ok := s.(sim.FaultInjector); ok {
		return fi.Faults(v)
	}
	return nil
}

// withhold narrows a view to the processes not in dead and asks inner
// for the next step; it stops the run if everyone left is dead.
func withhold(inner sim.Scheduler, v sim.View, dead func(id int) bool) int {
	live := make([]int, 0, len(v.Enabled))
	for _, id := range v.Enabled {
		if !dead(id) {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return sim.Stop
	}
	pick := inner.Next(sim.View{Step: v.Step, Enabled: live})
	if pick == sim.Stop {
		return sim.Stop
	}
	return pick
}

// CrashDuringOp kills one process in the middle of a logical operation:
// after the victim has issued BeginOp and then taken Depth base-object
// steps inside the operation, it never runs again. The object's partial
// state — whatever the victim already wrote — stays visible to every
// other process.
type CrashDuringOp struct {
	victim  int
	depth   int
	inner   sim.Scheduler
	report  *Report
	open    bool // victim has an open logical operation
	inOp    int  // base steps the victim took inside it
	armed   bool // crash condition met, not yet recorded
	crashed bool
}

// NewCrashDuringOp returns the crash-during-operation adversary for the
// given victim. depth is the number of base-object steps the victim may
// take inside its logical operation before dying; 0 kills it right
// after BeginOp.
func NewCrashDuringOp(inner sim.Scheduler, r *Report, victim, depth int) *CrashDuringOp {
	return &CrashDuringOp{victim: victim, depth: depth, inner: innerOf(inner), report: r}
}

// Faults implements sim.FaultInjector by delegation.
func (c *CrashDuringOp) Faults(v sim.View) []sim.Fault { return forwardFaults(c.inner, v) }

// Observe implements sim.Observer: it tracks the victim's operation
// structure and arms the crash once the victim is Depth steps deep.
func (c *CrashDuringOp) Observe(e sim.Event) {
	if e.Proc == c.victim && !c.crashed {
		switch e.Kind {
		case sim.EventCall:
			c.open = true
			c.inOp = 0
		case sim.EventReturn:
			// The operation finished before the scheduler could withhold
			// the victim (depth reached on its final base step); nothing
			// is left to crash inside.
			c.open = false
			c.armed = false
		case sim.EventStep:
			if c.open {
				c.inOp++
			}
		}
		if c.open && c.inOp >= c.depth {
			c.armed = true
		}
	}
	forwardObserve(c.inner, e)
}

// Next implements sim.Scheduler.
func (c *CrashDuringOp) Next(v sim.View) int {
	if c.armed && !c.crashed {
		c.crashed = true
		c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "crash",
			Note: "mid-operation, partial writes visible"})
	}
	if !c.crashed {
		return c.inner.Next(v)
	}
	return withhold(c.inner, v, func(id int) bool { return id == c.victim })
}

// CrashRecovery crashes one process at a chosen step and lets it
// re-enter, with its id and full local state, after a recovery window.
// Between crash and recovery the process takes no steps; afterwards it
// resumes from its pending invocation.
//
// This is the *full-persistence* recovery model: every register of the
// crashed process — program counter, locals, the invocation it was about
// to issue — survives the crash, so recovery is pure scheduling (a
// withheld window) and no state is rebuilt. Contrast CrashRestart
// (restart.go), the *amnesiac* model, where the victim loses all
// volatile state and re-runs its program from the top behind a recovery
// procedure. An algorithm correct under CrashRecovery may still lose
// power under CrashRestart; E20 measures that gap.
type CrashRecovery struct {
	victim    int
	crashAt   int // global step at which the crash fires
	window    int // steps withheld before recovery
	inner     sim.Scheduler
	report    *Report
	crashed   bool
	recovered bool
}

// NewCrashRecovery returns the crash-recovery adversary: victim crashes
// at step crashAt and recovers window steps later.
func NewCrashRecovery(inner sim.Scheduler, r *Report, victim, crashAt, window int) *CrashRecovery {
	return &CrashRecovery{victim: victim, crashAt: crashAt, window: window, inner: innerOf(inner), report: r}
}

// Observe implements sim.Observer.
func (c *CrashRecovery) Observe(e sim.Event) { forwardObserve(c.inner, e) }

// Faults implements sim.FaultInjector by delegation.
func (c *CrashRecovery) Faults(v sim.View) []sim.Fault { return forwardFaults(c.inner, v) }

// Next implements sim.Scheduler.
func (c *CrashRecovery) Next(v sim.View) int {
	if !c.crashed && v.Step >= c.crashAt {
		c.crashed = true
		c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "crash",
			Note: "recoverable"})
	}
	if c.crashed && !c.recovered && v.Step >= c.crashAt+c.window {
		c.recovered = true
		c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "recover",
			Note: "re-entered with full local state"})
	}
	if c.crashed && !c.recovered {
		pick := withhold(c.inner, v, func(id int) bool { return id == c.victim })
		if pick != sim.Stop {
			return pick
		}
		// Withholding the victim would deadlock the lockstep run (every
		// other process is finished or itself withheld). In the
		// asynchronous model a recovering process must eventually be
		// scheduled, so the window truncates here.
		c.recovered = true
		c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "recover",
			Note: "window truncated: no other live process"})
		return c.inner.Next(v)
	}
	return c.inner.Next(v)
}

// Stall starves one process for a configurable window of scheduler
// steps: while the window is open the victim, though enabled, is never
// chosen. Unlike a crash the starvation ends, so wait-free code must
// both tolerate the absence and let the victim finish afterwards.
type Stall struct {
	victim int
	from   int // first withheld step
	window int // number of withheld steps
	inner  sim.Scheduler
	report *Report
	run    int // current consecutive withheld-while-enabled streak
	logged bool
}

// NewStall returns the step-stall adversary: victim is starved during
// steps [from, from+window).
func NewStall(inner sim.Scheduler, r *Report, victim, from, window int) *Stall {
	return &Stall{victim: victim, from: from, window: window, inner: innerOf(inner), report: r}
}

// Observe implements sim.Observer.
func (s *Stall) Observe(e sim.Event) { forwardObserve(s.inner, e) }

// Faults implements sim.FaultInjector by delegation.
func (s *Stall) Faults(v sim.View) []sim.Fault { return forwardFaults(s.inner, v) }

// Next implements sim.Scheduler.
func (s *Stall) Next(v sim.View) int {
	active := v.Step >= s.from && v.Step < s.from+s.window
	if !active {
		s.run = 0
		return s.inner.Next(v)
	}
	pick := withhold(s.inner, v, func(id int) bool { return id == s.victim })
	if pick == sim.Stop && v.EnabledSet(s.victim) {
		// Starving the victim would deadlock the lockstep run; a stall
		// (unlike a crash) is bounded, so the window truncates and the
		// victim runs.
		s.window = 0
		return s.inner.Next(v)
	}
	if v.EnabledSet(s.victim) {
		if !s.logged {
			s.logged = true
			s.report.record(Injection{Step: v.Step, Proc: s.victim, Kind: "stall",
				Note: fmt.Sprintf("window %d steps", s.window)})
		}
		s.run++
		s.report.stall(s.run)
	}
	return pick
}

// Adaptive is a seeded, history-driven adversary. Watching the run
// through the Observer tap, it knows how many steps each process has
// taken and alternates between the classic attack modes: running the
// leader solo (the paper's solo-run arguments), starving it in favour
// of the laggard, uniform noise, and short bursts that keep one process
// in the critical window of an operation. All choices draw from its own
// seeded source, so a (seed, configuration) pair is one execution.
type Adaptive struct {
	rng    *rand.Rand
	report *Report
	steps  []int
	last   int
	burst  int
}

// NewAdaptive returns the adaptive adversary with the given seed.
func NewAdaptive(seed int64, r *Report) *Adaptive {
	return &Adaptive{rng: rand.New(rand.NewSource(seed)), report: r, last: -1}
}

// Observe implements sim.Observer: it maintains the per-process step
// counts that drive leader/laggard targeting.
func (a *Adaptive) Observe(e sim.Event) {
	if e.Kind != sim.EventStep {
		return
	}
	for len(a.steps) <= e.Proc {
		a.steps = append(a.steps, 0)
	}
	a.steps[e.Proc]++
}

// count returns process id's observed step count.
func (a *Adaptive) count(id int) int {
	if id < len(a.steps) {
		return a.steps[id]
	}
	return 0
}

// Next implements sim.Scheduler.
func (a *Adaptive) Next(v sim.View) int {
	if a.burst > 0 && v.EnabledSet(a.last) {
		a.burst--
		return a.last
	}
	pick := v.Enabled[0]
	switch a.rng.Intn(4) {
	case 0: // leader solo: the most advanced enabled process
		for _, id := range v.Enabled {
			if a.count(id) > a.count(pick) {
				pick = id
			}
		}
	case 1: // laggard: the least advanced enabled process
		for _, id := range v.Enabled {
			if a.count(id) < a.count(pick) {
				pick = id
			}
		}
	case 2: // uniform noise
		pick = v.Enabled[a.rng.Intn(len(v.Enabled))]
	case 3: // burst: pin one process for a short stretch
		pick = v.Enabled[a.rng.Intn(len(v.Enabled))]
		a.burst = a.rng.Intn(8)
	}
	a.last = pick
	return pick
}

// instrumented is the outermost layer of an adversary stack: it counts
// every scheduled step into the report's per-process histogram.
type instrumented struct {
	inner  sim.Scheduler
	report *Report
}

// Instrument wraps sched so that every step lands in r's histogram.
// Wrap last, outermost.
func Instrument(sched sim.Scheduler, r *Report) sim.Scheduler {
	return &instrumented{inner: innerOf(sched), report: r}
}

// Observe implements sim.Observer.
func (in *instrumented) Observe(e sim.Event) {
	if e.Kind == sim.EventStep {
		in.report.step(e.Proc)
	}
	forwardObserve(in.inner, e)
}

// Next implements sim.Scheduler.
func (in *instrumented) Next(v sim.View) int { return in.inner.Next(v) }

// Faults implements sim.FaultInjector by delegation.
func (in *instrumented) Faults(v sim.View) []sim.Fault { return forwardFaults(in.inner, v) }
