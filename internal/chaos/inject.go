package chaos

// The native half of the harness: a seeded native.Injector. Goroutine
// interleaving is inherently irreproducible, so determinism is pinned
// where it can be: the fault injected at the nth visit of a chaos point
// is a pure function of (seed, site, n), independent of which goroutine
// gets there. A failing run's fault *plan* therefore reproduces from
// its seed even though the interleaving around it varies.

import (
	"hash/fnv"
	"sync"

	"detobj/native"
)

// InjectorConfig sets per-mille rates for each fault kind at every
// chaos point. The rates are checked in order abort, stall, yield and
// must sum to at most 1000.
type InjectorConfig struct {
	AbortPermille int
	StallPermille int
	YieldPermille int
}

// DefaultInjectorConfig perturbs scheduling aggressively but aborts
// rarely, the profile used by the chaos driver's native scenarios.
var DefaultInjectorConfig = InjectorConfig{AbortPermille: 5, StallPermille: 50, YieldPermille: 250}

// Injector is a seeded native.Injector recording into a Report.
type Injector struct {
	seed   int64
	cfg    InjectorConfig
	report *Report

	mu     sync.Mutex
	visits map[string]int
}

// NewInjector returns a seeded injector; r may be nil.
func NewInjector(seed int64, cfg InjectorConfig, r *Report) *Injector {
	return &Injector{seed: seed, cfg: cfg, report: r, visits: make(map[string]int)}
}

// At implements native.Injector.
func (in *Injector) At(site string, id int) native.Fault {
	in.mu.Lock()
	n := in.visits[site]
	in.visits[site] = n + 1
	in.mu.Unlock()
	f := in.decide(site, n)
	switch f {
	case native.FaultAbort:
		in.report.record(Injection{Step: n, Proc: id, Site: site, Kind: "abort"})
	case native.FaultStall:
		in.report.record(Injection{Step: n, Proc: id, Site: site, Kind: "stall"})
	case native.FaultYield:
		in.report.record(Injection{Step: n, Proc: id, Site: site, Kind: "yield"})
	}
	return f
}

// decide maps (seed, site, visit) to a fault, deterministically.
func (in *Injector) decide(site string, visit int) native.Fault {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(in.seed >> (8 * i))
		buf[8+i] = byte(visit >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(site))
	r := int(h.Sum64() % 1000)
	switch {
	case r < in.cfg.AbortPermille:
		return native.FaultAbort
	case r < in.cfg.AbortPermille+in.cfg.StallPermille:
		return native.FaultStall
	case r < in.cfg.AbortPermille+in.cfg.StallPermille+in.cfg.YieldPermille:
		return native.FaultYield
	default:
		return native.FaultNone
	}
}

// Plan returns the deterministic fault plan for a site's first n
// visits — what the injector will order, independent of scheduling.
func (in *Injector) Plan(site string, n int) []native.Fault {
	out := make([]native.Fault, n)
	for i := range out {
		out[i] = in.decide(site, i)
	}
	return out
}
