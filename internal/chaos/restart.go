package chaos

// Amnesiac crash-restart adversaries. Unlike the schedule-only
// adversaries in adversary.go, these issue real sim.Fault directives
// through the sim.FaultInjector interface: a FaultCrash wipes the
// victim's volatile state (program locals, in-flight invocation, the
// volatile half of sim.Recoverable objects) and a later FaultRestart
// re-runs the victim's program from the top behind sim.Config.Recovery.
// See the model comparison in adversary.go's header.
//
// All three stay inside the deterministic lockstep contract: directives
// are pure functions of the observed history and the views seen so far,
// so a (seed, configuration) pair identifies one execution and
// sim.Config.VerifyReplay re-checks it. Each records its faults into the
// shared Report under Kind "crash" / "restart" (bumping Restarts(), not
// Recoveries()).
//
// A restart window truncates the same way CrashRecovery's does: if the
// victim is crashed and no other process is enabled, withholding the
// restart any longer would deadlock the lockstep run, so the restart
// fires immediately and the truncation is noted in the fault log.

import (
	"fmt"
	"math/rand"

	"detobj/internal/sim"
)

// CrashRestart crashes one process at a chosen step and restarts it,
// amnesiacally, window steps later. The crash fires at the first
// scheduling round at or after crashAt in which the victim has a pending
// invocation (a process that already finished or hung is never crashed).
type CrashRestart struct {
	victim  int
	crashAt int // global step at which the crash fires
	window  int // steps withheld before the restart
	inner   sim.Scheduler
	report  *Report

	crashed   bool
	restarted bool
	crashStep int
}

// NewCrashRestart returns the single-crash amnesiac-restart adversary:
// victim crashes at step crashAt and restarts window steps later.
func NewCrashRestart(inner sim.Scheduler, r *Report, victim, crashAt, window int) *CrashRestart {
	return &CrashRestart{victim: victim, crashAt: crashAt, window: window, inner: innerOf(inner), report: r}
}

// Observe implements sim.Observer.
func (c *CrashRestart) Observe(e sim.Event) { forwardObserve(c.inner, e) }

// Next implements sim.Scheduler.
func (c *CrashRestart) Next(v sim.View) int { return c.inner.Next(v) }

// Faults implements sim.FaultInjector.
func (c *CrashRestart) Faults(v sim.View) []sim.Fault {
	if !c.crashed {
		if v.Step >= c.crashAt && v.EnabledSet(c.victim) {
			c.crashed = true
			c.crashStep = v.Step
			c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "crash",
				Note: "amnesiac: volatile state lost"})
			return []sim.Fault{{Proc: c.victim, Kind: sim.FaultCrash}}
		}
		return forwardFaults(c.inner, v)
	}
	if !c.restarted && v.CrashedSet(c.victim) {
		if v.Step >= c.crashStep+c.window {
			c.restarted = true
			c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "restart",
				Note: "re-ran from the top after recovery"})
			return []sim.Fault{{Proc: c.victim, Kind: sim.FaultRestart}}
		}
		if len(v.Enabled) == 0 {
			c.restarted = true
			c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "restart",
				Note: "window truncated: no other live process"})
			return []sim.Fault{{Proc: c.victim, Kind: sim.FaultRestart}}
		}
	}
	return forwardFaults(c.inner, v)
}

// RepeatedCrashRestart crashes the same victim over and over: each time
// the victim has taken depth base-object steps since its last restart it
// is crashed again, up to times crashes in total, each followed by an
// amnesiac restart after window steps. This is the adversary that
// punishes recovery procedures which redo non-idempotent work — a victim
// that makes no durable progress per incarnation never escapes it.
type RepeatedCrashRestart struct {
	victim int
	depth  int // victim steps between restart and the next crash
	window int // steps withheld before each restart
	times  int // total crash budget
	inner  sim.Scheduler
	report *Report

	sinceRestart int // victim steps observed since its last restart
	crashes      int
	crashed      bool
	crashStep    int
}

// NewRepeatedCrashRestart returns the repeated amnesiac-restart
// adversary: victim is crashed after every depth of its own steps,
// restarted window steps later, times crashes in total.
func NewRepeatedCrashRestart(inner sim.Scheduler, r *Report, victim, depth, window, times int) *RepeatedCrashRestart {
	return &RepeatedCrashRestart{victim: victim, depth: depth, window: window, times: times,
		inner: innerOf(inner), report: r}
}

// Observe implements sim.Observer: it counts the victim's steps within
// its current incarnation.
func (c *RepeatedCrashRestart) Observe(e sim.Event) {
	if e.Proc == c.victim {
		switch e.Kind {
		case sim.EventStep:
			c.sinceRestart++
		case sim.EventRestart:
			c.sinceRestart = 0
		}
	}
	forwardObserve(c.inner, e)
}

// Next implements sim.Scheduler.
func (c *RepeatedCrashRestart) Next(v sim.View) int { return c.inner.Next(v) }

// Faults implements sim.FaultInjector.
func (c *RepeatedCrashRestart) Faults(v sim.View) []sim.Fault {
	if !c.crashed {
		if c.crashes < c.times && c.sinceRestart >= c.depth && v.EnabledSet(c.victim) {
			c.crashed = true
			c.crashes++
			c.crashStep = v.Step
			c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "crash",
				Note: fmt.Sprintf("amnesiac, crash %d of %d", c.crashes, c.times)})
			return []sim.Fault{{Proc: c.victim, Kind: sim.FaultCrash}}
		}
		return forwardFaults(c.inner, v)
	}
	if v.CrashedSet(c.victim) {
		if v.Step >= c.crashStep+c.window {
			c.crashed = false
			c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "restart",
				Note: "re-ran from the top after recovery"})
			return []sim.Fault{{Proc: c.victim, Kind: sim.FaultRestart}}
		}
		if len(v.Enabled) == 0 {
			c.crashed = false
			c.report.record(Injection{Step: v.Step, Proc: c.victim, Kind: "restart",
				Note: "window truncated: no other live process"})
			return []sim.Fault{{Proc: c.victim, Kind: sim.FaultRestart}}
		}
	}
	return forwardFaults(c.inner, v)
}

// AdaptiveRestart is the seeded, history-driven amnesiac adversary.
// Watching the run through the Observer tap, it arms a crash with a
// seeded coin toss each time any process begins a logical operation
// (Ctx.BeginOp), fires once the process is a seeded number of base steps
// inside that operation — the window in which volatile state is most
// valuable — and restarts it after a seeded window. Up to maxCrashes
// crashes are issued across all processes; crashed processes are always
// restarted eventually, so the adversary never strands the run.
type AdaptiveRestart struct {
	rng        *rand.Rand
	inner      sim.Scheduler
	report     *Report
	maxCrashes int

	inOp      []int // per proc: -1 no open op, else base steps inside it
	armDepth  []int // per proc: -1 unarmed, else in-op depth that triggers the crash
	crashStep []int // per proc: -1 not crashed, else step of the crash
	window    []int // per proc: restart window for the current crash
	crashes   int
}

// NewAdaptiveRestart returns the adaptive amnesiac-restart adversary
// with the given seed and total crash budget.
func NewAdaptiveRestart(inner sim.Scheduler, r *Report, seed int64, maxCrashes int) *AdaptiveRestart {
	return &AdaptiveRestart{
		rng:        rand.New(rand.NewSource(seed)),
		inner:      innerOf(inner),
		report:     r,
		maxCrashes: maxCrashes,
	}
}

// grow extends the per-process tracking slices to cover id.
func (a *AdaptiveRestart) grow(id int) {
	for len(a.inOp) <= id {
		a.inOp = append(a.inOp, -1)
		a.armDepth = append(a.armDepth, -1)
		a.crashStep = append(a.crashStep, -1)
		a.window = append(a.window, 0)
	}
}

// Observe implements sim.Observer: it tracks operation structure per
// process and draws the arming decisions.
func (a *AdaptiveRestart) Observe(e sim.Event) {
	a.grow(e.Proc)
	switch e.Kind {
	case sim.EventCall:
		a.inOp[e.Proc] = 0
		a.armDepth[e.Proc] = -1
		if a.crashes < a.maxCrashes && a.rng.Intn(2) == 0 {
			a.armDepth[e.Proc] = a.rng.Intn(3)
		}
	case sim.EventReturn:
		a.inOp[e.Proc] = -1
		a.armDepth[e.Proc] = -1
	case sim.EventStep:
		if a.inOp[e.Proc] >= 0 {
			a.inOp[e.Proc]++
		}
	case sim.EventCrash, sim.EventRestart:
		// The open operation died with the incarnation (whether we or an
		// inner layer issued the fault); a restarted process re-announces
		// with a fresh BeginOp.
		a.inOp[e.Proc] = -1
		a.armDepth[e.Proc] = -1
	}
	forwardObserve(a.inner, e)
}

// Next implements sim.Scheduler.
func (a *AdaptiveRestart) Next(v sim.View) int { return a.inner.Next(v) }

// Faults implements sim.FaultInjector: due restarts first (lowest id),
// then at most one armed crash per round.
func (a *AdaptiveRestart) Faults(v sim.View) []sim.Fault {
	for _, id := range v.Crashed {
		a.grow(id)
		if a.crashStep[id] < 0 {
			continue // crashed by an inner layer, not ours to restart
		}
		if v.Step >= a.crashStep[id]+a.window[id] || len(v.Enabled) == 0 {
			note := "re-ran from the top after recovery"
			if len(v.Enabled) == 0 && v.Step < a.crashStep[id]+a.window[id] {
				note = "window truncated: no other live process"
			}
			a.crashStep[id] = -1
			a.report.record(Injection{Step: v.Step, Proc: id, Kind: "restart", Note: note})
			return []sim.Fault{{Proc: id, Kind: sim.FaultRestart}}
		}
	}
	if a.crashes < a.maxCrashes {
		for _, id := range v.Enabled {
			a.grow(id)
			if a.armDepth[id] >= 0 && a.inOp[id] >= a.armDepth[id] {
				a.crashes++
				a.armDepth[id] = -1
				a.crashStep[id] = v.Step
				a.window[id] = a.rng.Intn(6)
				a.report.record(Injection{Step: v.Step, Proc: id, Kind: "crash",
					Note: "amnesiac, mid-operation"})
				return []sim.Fault{{Proc: id, Kind: sim.FaultCrash}}
			}
		}
	}
	return forwardFaults(a.inner, v)
}
