// Package chaos is the repository's deterministic fault-injection
// layer. The paper's objects are *defined* by their behaviour under an
// adversary — WRN_k must stay safe when processes crash mid-operation
// and must hang (not err) on exhaustion — so testing them means
// supplying adversaries systematically, not hoping the scheduler
// stumbles into one.
//
// The package plugs into both execution substrates:
//
//   - In the simulator (internal/sim) it provides composable adversary
//     schedulers — crash-during-operation, full-persistence
//     crash-recovery, amnesiac crash-restart (single, repeated and
//     adaptive, issuing real sim.Fault directives), step-stall
//     starvation and an adaptive, history-driven adversary — that wrap
//     any inner scheduler and stay fully deterministic: a (seed,
//     configuration) pair identifies one execution, replay-verified by
//     sim.Config.VerifyReplay. See adversary.go for the three crash
//     models and how they differ.
//
//   - In package native it provides a seeded Injector whose
//     yield/stall/abort decisions at each chaos point are a pure
//     function of (seed, site, visit number), so a fault plan
//     reproduces from its seed even though goroutine interleaving does
//     not.
//
// Every chaos run records into a Report — crash, recovery and restart
// counts, the longest stall, a per-process step histogram and the full
// injected-fault log — so a failure reproduces from a single seed.
// Recoveries() counts full-persistence re-entries, Restarts() counts
// amnesiac re-entries; the two are never conflated.
package chaos

import (
	"fmt"
	"strings"
	"sync"
)

// Injection is one recorded fault.
type Injection struct {
	// Step is the scheduler step at which the fault fired (simulator
	// adversaries) or the site's visit number (native injector).
	Step int
	// Proc is the process or participant the fault targeted.
	Proc int
	// Site is the native chaos-point name; empty for simulator faults.
	Site string
	// Kind names the fault: "crash", "recover" (full-persistence
	// re-entry), "restart" (amnesiac re-entry), "stall", "yield",
	// "abort".
	Kind string
	// Note carries fault-specific detail (e.g. a stall window).
	Note string
}

// String renders the injection as one log line.
func (i Injection) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d: %s P%d", i.Step, i.Kind, i.Proc)
	if i.Site != "" {
		fmt.Fprintf(&b, " at %s", i.Site)
	}
	if i.Note != "" {
		fmt.Fprintf(&b, " (%s)", i.Note)
	}
	return b.String()
}

// Report is the structured outcome of a chaos run. Simulator adversaries
// fill it deterministically; the native injector's entries are
// deterministic per (site, visit) though their interleaving order
// follows the goroutine schedule. A Report is safe for concurrent
// recording.
type Report struct {
	// Seed identifies the run; re-running with the same seed and
	// configuration reproduces the same simulator report byte for byte.
	Seed int64

	mu sync.Mutex
	// crashes, recoveries and restarts count the respective injected
	// faults; recoveries are full-persistence re-entries, restarts are
	// amnesiac re-entries.
	crashes, recoveries, restarts int
	// maxStall is the longest observed consecutive starvation of an
	// enabled process, in scheduler steps.
	maxStall int
	// stepHist counts scheduled steps per process id.
	stepHist []int
	// injections is the ordered fault log.
	injections []Injection
}

// NewReport returns an empty report for the given seed.
func NewReport(seed int64) *Report { return &Report{Seed: seed} }

// record appends one fault and bumps the matching counter.
func (r *Report) record(i Injection) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch i.Kind {
	case "crash":
		r.crashes++
	case "recover":
		r.recoveries++
	case "restart":
		r.restarts++
	}
	r.injections = append(r.injections, i)
}

// step counts one scheduled step for process id.
func (r *Report) step(id int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.stepHist) <= id {
		r.stepHist = append(r.stepHist, 0)
	}
	r.stepHist[id]++
}

// stall reports an observed consecutive starvation of length n steps.
func (r *Report) stall(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.maxStall {
		r.maxStall = n
	}
}

// Crashes returns the number of injected crashes.
func (r *Report) Crashes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashes
}

// Recoveries returns the number of injected full-persistence recoveries
// (the victim re-entered with its local state intact; see
// CrashRecovery).
func (r *Report) Recoveries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recoveries
}

// Restarts returns the number of injected amnesiac restarts (the victim
// lost its volatile state and re-ran from the top; see CrashRestart).
// Distinct from Recoveries.
func (r *Report) Restarts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restarts
}

// MaxStall returns the longest observed consecutive starvation, in
// scheduler steps.
func (r *Report) MaxStall() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxStall
}

// StepHist returns a copy of the per-process step histogram.
func (r *Report) StepHist() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.stepHist))
	copy(out, r.stepHist)
	return out
}

// Injections returns a copy of the ordered fault log.
func (r *Report) Injections() []Injection {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Injection, len(r.injections))
	copy(out, r.injections)
	return out
}

// String renders the report; for simulator runs the rendering is
// byte-identical across re-runs with the same seed and configuration.
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "chaos report (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "  crashes: %d  recoveries: %d  restarts: %d  max stall: %d\n", r.crashes, r.recoveries, r.restarts, r.maxStall)
	fmt.Fprintf(&b, "  steps/proc: %v\n", r.stepHist)
	fmt.Fprintf(&b, "  injections: %d\n", len(r.injections))
	for _, i := range r.injections {
		fmt.Fprintf(&b, "    %s\n", i)
	}
	return b.String()
}
