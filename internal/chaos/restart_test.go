package chaos

import (
	"testing"

	"detobj/internal/sim"
)

// volatileCounter is a sim.Recoverable test object: "inc" stages one
// pending increment in a volatile per-process slot, "commit" folds it
// into the durable count, "read" returns the durable count. A crash
// loses whatever the victim staged but not what it committed.
type volatileCounter struct {
	durable int
	staged  map[int]int
}

func (c *volatileCounter) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	switch inv.Op {
	case "inc":
		if c.staged == nil {
			c.staged = make(map[int]int)
		}
		c.staged[env.Proc]++
		return sim.Respond(nil)
	case "commit":
		c.durable += c.staged[env.Proc]
		delete(c.staged, env.Proc)
		return sim.Respond(c.durable)
	case "read":
		return sim.Respond(c.durable)
	}
	return sim.HangCaller()
}

func (c *volatileCounter) OnCrash(proc int) { delete(c.staged, proc) }

// incCommitRead drives the volatile counter: stage incs, commit, read.
func incCommitRead(incs int) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		ctx.BeginOp("W", "incs")
		for i := 0; i < incs; i++ {
			ctx.Invoke("C", "inc")
		}
		ctx.Invoke("C", "commit")
		v := ctx.Invoke("C", "read")
		ctx.EndOp("W", "incs", v)
		return v
	}
}

// restartRun executes n counter processes under the given adversary stack
// with replay verification on.
func restartRun(t *testing.T, n int, sched sim.Scheduler) *sim.Result {
	t.Helper()
	progs := make([]sim.Program, n)
	for i := range progs {
		progs[i] = incCommitRead(3)
	}
	res, err := sim.Run(sim.Config{
		Objects:      map[string]sim.Object{"C": &volatileCounter{}},
		Programs:     progs,
		Scheduler:    sched,
		MaxSteps:     1 << 16,
		VerifyReplay: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestCrashRestartAmnesiacSingle(t *testing.T) {
	r := NewReport(1)
	res := restartRun(t, 3, NewCrashRestart(sim.NewRoundRobin(), r, 1, 4, 6))
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done (restart must arrive)", res.Status)
	}
	if r.Crashes() != 1 || r.Restarts() != 1 || r.Recoveries() != 0 {
		t.Fatalf("crashes=%d restarts=%d recoveries=%d, want 1/1/0", r.Crashes(), r.Restarts(), r.Recoveries())
	}
	if res.Restarts[1] != 1 {
		t.Fatalf("sim restarts = %v, want process 1 restarted once", res.Restarts)
	}
	// The trace must carry the wiped invocation and the incarnation.
	sawCrash, sawRestart := false, false
	for _, e := range res.Trace.Events {
		switch e.Kind {
		case sim.EventCrash:
			sawCrash = true
			if e.Proc != 1 {
				t.Errorf("crash event for P%d, want P1", e.Proc)
			}
		case sim.EventRestart:
			sawRestart = true
		}
	}
	if !sawCrash || !sawRestart {
		t.Fatalf("trace missing crash/restart events:\n%s", res.Trace)
	}
}

func TestCrashRestartVictimAlreadyDone(t *testing.T) {
	// crashAt far beyond the run: the victim finishes first and the
	// adversary must never fire an inapplicable directive.
	r := NewReport(1)
	res := restartRun(t, 2, NewCrashRestart(sim.NewRoundRobin(), r, 0, 1<<12, 4))
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done", res.Status)
	}
	if r.Crashes() != 0 || r.Restarts() != 0 {
		t.Fatalf("crashes=%d restarts=%d, want 0/0", r.Crashes(), r.Restarts())
	}
}

func TestRepeatedCrashRestartExhaustsBudget(t *testing.T) {
	r := NewReport(1)
	res := restartRun(t, 3, NewRepeatedCrashRestart(sim.NewRoundRobin(), r, 0, 2, 3, 3))
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done after the crash budget drains", res.Status)
	}
	if r.Crashes() != 3 || r.Restarts() != 3 {
		t.Fatalf("crashes=%d restarts=%d, want 3/3", r.Crashes(), r.Restarts())
	}
	if res.Restarts[0] != 3 {
		t.Fatalf("sim restarts = %v, want process 0 restarted three times", res.Restarts)
	}
}

func TestAdaptiveRestartDeterministicAndBalanced(t *testing.T) {
	run := func() (*sim.Result, *Report) {
		r := NewReport(9)
		res := restartRun(t, 4, NewAdaptiveRestart(sim.NewRandom(9), r, 9, 3))
		return res, r
	}
	res1, r1 := run()
	res2, r2 := run()
	if got, want := res1.Trace.String(), res2.Trace.String(); got != want {
		t.Fatalf("adaptive restart trace not reproducible:\n--- first\n%s--- second\n%s", want, got)
	}
	if r1.String() != r2.String() {
		t.Fatalf("adaptive restart report not reproducible:\n%s\nvs\n%s", r1, r2)
	}
	if !res1.AllDone() {
		t.Fatalf("statuses = %v, want all done (every crash restarted)", res1.Status)
	}
	if r1.Crashes() != r1.Restarts() {
		t.Fatalf("crashes=%d restarts=%d, want equal (no stranded process)", r1.Crashes(), r1.Restarts())
	}
}

func TestRestartComposesWithWrappers(t *testing.T) {
	// The FaultInjector channel must survive wrapping: Instrument and
	// Stall delegate Faults inward to the restart layer.
	r := NewReport(3)
	stack := Instrument(NewStall(NewCrashRestart(sim.NewRandom(3), r, 2, 3, 4), r, 0, 2, 3), r)
	res := restartRun(t, 3, stack)
	if !res.AllDone() {
		t.Fatalf("statuses = %v, want all done", res.Status)
	}
	if r.Crashes() != 1 || r.Restarts() != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1 through the wrapper stack", r.Crashes(), r.Restarts())
	}
	if hist := r.StepHist(); len(hist) == 0 {
		t.Fatalf("instrumented histogram empty; Observe not forwarded")
	}
}
