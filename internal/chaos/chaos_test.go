package chaos

import (
	"errors"
	"strings"
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

// alg5Run executes k processes driving wrn.Impl (Algorithm 5) under the
// given scheduler stack, with replay verification on.
func alg5Run(t *testing.T, k int, seed int64, sched sim.Scheduler) (*sim.Result, wrn.Impl) {
	t.Helper()
	objects := map[string]sim.Object{}
	impl := wrn.NewImpl(objects, "LW", k)
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return impl.TracedWRN(ctx, i, 100+i)
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:      objects,
		Programs:     progs,
		Scheduler:    sched,
		Seed:         seed,
		MaxSteps:     1 << 18,
		VerifyReplay: true,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res, impl
}

// traceString flattens a trace for byte-for-byte comparison.
func traceString(tr sim.Trace) string {
	var b strings.Builder
	for _, e := range tr.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// checkHistory asserts the run's history, pending operations included,
// linearizes against the 1sWRN_k specification.
func checkHistory(t *testing.T, res *sim.Result, impl wrn.Impl, k int) {
	t.Helper()
	done, pending := linearize.OpsWithPending(res.Trace, impl.Name())
	all := append(done, pending...)
	if !linearize.Check(wrn.Spec(k), all).OK {
		t.Fatalf("chaos history not linearizable:\ncompleted %v\npending %v", done, pending)
	}
}

// TestCrashDuringOpPartialState kills each victim in turn right after it
// opens its logical WRN (depth 0) and several base steps deep. The victim
// ends StatusStopped with its partial writes visible; survivors finish and
// the history, pending op included, linearizes.
func TestCrashDuringOpPartialState(t *testing.T) {
	const k = 4
	for victim := 0; victim < k; victim++ {
		for _, depth := range []int{0, 1, 3, 7} {
			for seed := int64(0); seed < 8; seed++ {
				r := NewReport(seed)
				adv := NewCrashDuringOp(sim.NewRandom(seed), r, victim, depth)
				res, impl := alg5Run(t, k, seed, Instrument(adv, r))
				// An operation shorter than depth completes before the
				// crash arms; the victim then survives and no crash is
				// recorded. At depth 0 the crash always fires.
				if r.Crashes() == 0 {
					if depth == 0 {
						t.Fatalf("victim=%d seed=%d: depth-0 crash never fired", victim, seed)
					}
					if res.Status[victim] != sim.StatusDone {
						t.Fatalf("victim=%d depth=%d seed=%d: no crash recorded but victim status %v",
							victim, depth, seed, res.Status[victim])
					}
				} else if res.Status[victim] != sim.StatusStopped {
					t.Fatalf("victim=%d depth=%d seed=%d: victim status %v, want stopped",
						victim, depth, seed, res.Status[victim])
				}
				for i := 0; i < k; i++ {
					if i != victim && res.Status[i] != sim.StatusDone {
						t.Fatalf("victim=%d depth=%d seed=%d: survivor %d status %v",
							victim, depth, seed, i, res.Status[i])
					}
				}
				checkHistory(t, res, impl, k)
			}
		}
	}
}

// TestCrashRecoveryResumes crashes a victim, starves it for a window, and
// lets it re-enter with its id and local state. Everyone — victim included
// — must finish, and the report must show the crash/recover pair.
func TestCrashRecoveryResumes(t *testing.T) {
	const k = 3
	for victim := 0; victim < k; victim++ {
		for seed := int64(0); seed < 8; seed++ {
			r := NewReport(seed)
			adv := NewCrashRecovery(sim.NewRandom(seed), r, victim, 5, 40)
			res, impl := alg5Run(t, k, seed, Instrument(adv, r))
			if !res.AllDone() {
				t.Fatalf("victim=%d seed=%d: statuses %v, want all done after recovery",
					victim, seed, res.Status)
			}
			if r.Crashes() != 1 || r.Recoveries() != 1 {
				t.Fatalf("victim=%d seed=%d: crashes=%d recoveries=%d, want 1/1",
					victim, seed, r.Crashes(), r.Recoveries())
			}
			checkHistory(t, res, impl, k)
		}
	}
}

// TestStallStarvation starves one process for a window; wait-freedom means
// the others finish during the window and the victim afterwards. The
// report's max-stall must reflect the starvation.
func TestStallStarvation(t *testing.T) {
	const k, window = 3, 60
	for victim := 0; victim < k; victim++ {
		for seed := int64(0); seed < 8; seed++ {
			r := NewReport(seed)
			adv := NewStall(sim.NewRandom(seed), r, victim, 2, window)
			res, impl := alg5Run(t, k, seed, Instrument(adv, r))
			if !res.AllDone() {
				t.Fatalf("victim=%d seed=%d: statuses %v, want all done", victim, seed, res.Status)
			}
			if r.MaxStall() == 0 {
				t.Fatalf("victim=%d seed=%d: stall window never starved the victim", victim, seed)
			}
			if r.MaxStall() > window {
				t.Fatalf("victim=%d seed=%d: max stall %d exceeds window %d",
					victim, seed, r.MaxStall(), window)
			}
			checkHistory(t, res, impl, k)
		}
	}
}

// TestAdaptiveAdversarySweep drives Algorithm 5 under the history-driven
// adversary across seeds: replay-verified, linearizable, all done.
func TestAdaptiveAdversarySweep(t *testing.T) {
	const k = 4
	for seed := int64(0); seed < 25; seed++ {
		r := NewReport(seed)
		res, impl := alg5Run(t, k, seed, Instrument(NewAdaptive(seed, r), r))
		if !res.AllDone() {
			t.Fatalf("seed %d: statuses %v, want all done (adaptive adversary must not block wait-free code)",
				seed, res.Status)
		}
		checkHistory(t, res, impl, k)
		hist := r.StepHist()
		total := 0
		for _, n := range hist {
			total += n
		}
		if total != res.Trace.Steps() {
			t.Fatalf("seed %d: histogram total %d != trace steps %d", seed, total, res.Trace.Steps())
		}
	}
}

// TestChaosRunsAreReproducible: the same (seed, adversary configuration)
// must reproduce the trace and the rendered report byte for byte.
func TestChaosRunsAreReproducible(t *testing.T) {
	const k = 4
	for seed := int64(0); seed < 10; seed++ {
		run := func() (string, string) {
			r := NewReport(seed)
			stack := Instrument(NewStall(NewCrashDuringOp(NewAdaptive(seed, r), r, 1, 2), r, 2, 10, 30), r)
			res, _ := alg5Run(t, k, seed, stack)
			return traceString(res.Trace), r.String()
		}
		t1, r1 := run()
		t2, r2 := run()
		if t1 != t2 {
			t.Fatalf("seed %d: traces differ between identical runs", seed)
		}
		if r1 != r2 {
			t.Fatalf("seed %d: reports differ between identical runs:\n--- first\n%s--- second\n%s", seed, r1, r2)
		}
		if r1 == "" || !strings.Contains(r1, "seed") {
			t.Fatalf("seed %d: implausible report rendering %q", seed, r1)
		}
	}
}

// TestComposedAdversaries stacks crash + stall over the adaptive adversary
// and checks the run stays safe and consistent with the report.
func TestComposedAdversaries(t *testing.T) {
	const k = 4
	for seed := int64(0); seed < 10; seed++ {
		r := NewReport(seed)
		stack := Instrument(NewStall(NewCrashDuringOp(NewAdaptive(seed, r), r, 3, 1), r, 0, 5, 25), r)
		res, impl := alg5Run(t, k, seed, stack)
		if res.Status[3] != sim.StatusStopped {
			t.Fatalf("seed %d: crash victim status %v", seed, res.Status[3])
		}
		for i := 0; i < 3; i++ {
			if res.Status[i] != sim.StatusDone {
				t.Fatalf("seed %d: survivor %d status %v", seed, i, res.Status[i])
			}
		}
		checkHistory(t, res, impl, k)
	}
}

// TestBoundedConvertsHangToErrExhausted: a 1sWRN index reuse normally
// hangs the caller undetectably; through Bounded the caller gets the typed
// ErrExhausted and finishes.
func TestBoundedConvertsHangToErrExhausted(t *testing.T) {
	objects := map[string]sim.Object{
		"W": NewBounded(wrn.NewOneShot(2), 0),
	}
	progs := []sim.Program{
		func(ctx *sim.Ctx) sim.Value {
			ctx.Invoke("W", "WRN", 0, "first")
			return ctx.Invoke("W", "WRN", 0, "second") // illegal reuse
		},
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, VerifyReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[0] != sim.StatusDone {
		t.Fatalf("caller status %v, want done (Bounded must never hang)", res.Status[0])
	}
	if !Exhausted(res.Outputs[0]) {
		t.Fatalf("output %v, want ErrExhausted", res.Outputs[0])
	}
	e, ok := res.Outputs[0].(error)
	if !ok || !errors.Is(e, ErrExhausted) {
		t.Fatalf("output %v does not satisfy errors.Is(·, ErrExhausted)", res.Outputs[0])
	}
}

// TestBoundedStepBudget: once a process spends its per-process budget the
// wrapper degrades instead of letting it spin.
func TestBoundedStepBudget(t *testing.T) {
	objects := map[string]sim.Object{
		"W": NewBounded(wrn.New(4), 3),
	}
	progs := []sim.Program{
		func(ctx *sim.Ctx) sim.Value {
			for i := 0; i < 10; i++ {
				if v := ctx.Invoke("W", "WRN", i%4, i); Exhausted(v) {
					return v
				}
			}
			return "never exhausted"
		},
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, VerifyReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if !Exhausted(res.Outputs[0]) {
		t.Fatalf("output %v, want ErrExhausted after 3-step budget", res.Outputs[0])
	}
}

// TestBoundedDoesNotDisturbLegalRuns: under budgetless wrapping a legal
// run behaves exactly as without the wrapper — no spurious errors.
func TestBoundedDoesNotDisturbLegalRuns(t *testing.T) {
	const k = 3
	objects := map[string]sim.Object{
		"W": NewBounded(wrn.NewOneShot(k), 0),
	}
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return ctx.Invoke("W", "WRN", i, 100+i)
		}
	}
	res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, VerifyReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Outputs {
		if Exhausted(out) {
			t.Fatalf("process %d spuriously exhausted on a legal one-shot use", i)
		}
	}
}

// TestInjectorPlanIsSeedDeterministic: the native injector's fault plan is
// a pure function of (seed, site, visit), so two injectors with one seed
// agree and the live At sequence matches the precomputed plan.
func TestInjectorPlanIsSeedDeterministic(t *testing.T) {
	const site, n = "wrn.locked", 200
	for seed := int64(0); seed < 20; seed++ {
		a := NewInjector(seed, DefaultInjectorConfig, nil)
		b := NewInjector(seed, DefaultInjectorConfig, nil)
		plan := a.Plan(site, n)
		for i, want := range plan {
			if got := b.At(site, 0); got != want {
				t.Fatalf("seed %d visit %d: At=%v, plan=%v", seed, i, got, want)
			}
		}
	}
}

// TestInjectorPlansVaryAcrossSeeds: different seeds must not share one
// plan (else the sweep explores a single fault pattern).
func TestInjectorPlansVaryAcrossSeeds(t *testing.T) {
	const site, n = "election.round", 300
	base := NewInjector(1, DefaultInjectorConfig, nil).Plan(site, n)
	varied := false
	for seed := int64(2); seed < 8; seed++ {
		p := NewInjector(seed, DefaultInjectorConfig, nil).Plan(site, n)
		for i := range p {
			if p[i] != base[i] {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("300-entry fault plans identical across 7 seeds")
	}
}

// TestInjectorRecordsIntoReport: injected faults land in the shared
// report's fault log with the site attached.
func TestInjectorRecordsIntoReport(t *testing.T) {
	r := NewReport(3)
	inj := NewInjector(3, InjectorConfig{AbortPermille: 1000}, r)
	inj.At("wrn.enter", 7)
	logged := r.Injections()
	if len(logged) != 1 || logged[0].Kind != "abort" || logged[0].Site != "wrn.enter" || logged[0].Proc != 7 {
		t.Fatalf("injection log %v, want one abort at wrn.enter by P7", logged)
	}
}
