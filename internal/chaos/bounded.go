package chaos

// Bounded: the simulator side of graceful degradation. The model says
// an exhausted or illegal operation hangs the caller undetectably;
// Bounded is the one sanctioned crossing of that boundary. It wraps any
// sim.Object and converts the two ways a caller can lose progress —
// the inner object hanging it, or the caller exceeding a per-process
// step budget — into a returned native.ErrExhausted value the program
// can branch on. Deciding to degrade detectably changes the object's
// power (errors are observable, hangs are not; see DESIGN.md), which is
// why the conversion lives here, in the chaos layer, and not in the
// objects themselves.

import (
	"detobj/internal/sim"
	"detobj/native"
)

// ErrExhausted is the typed exhaustion error shared by both substrates;
// it is native.ErrExhausted, so errors.Is works across the facade.
//
//detlint:allow hangsemantics re-export of the documented hang-vs-error boundary sentinel for the simulator substrate
var ErrExhausted = native.ErrExhausted

// Bounded wraps a sim.Object with a per-process step budget and
// hang-to-error conversion. It is deterministic: the same run yields
// the same budgets spent and the same degradations.
type Bounded struct {
	inner  sim.Object
	budget int
	used   map[int]int
}

// NewBounded wraps inner. budget bounds the number of steps each
// process may apply through the wrapper; 0 means unlimited (only
// hang-to-error conversion remains).
func NewBounded(inner sim.Object, budget int) *Bounded {
	return &Bounded{inner: inner, budget: budget, used: make(map[int]int)}
}

// Apply implements sim.Object: over-budget callers and callers the
// inner object would hang receive ErrExhausted as their result value
// instead of parking forever.
func (b *Bounded) Apply(env *sim.Env, inv sim.Invocation) sim.Response {
	if b.budget > 0 {
		b.used[env.Proc]++
		if b.used[env.Proc] > b.budget {
			//detlint:allow hangsemantics Bounded IS the documented graceful-degradation boundary: it deliberately converts over-budget hangs into the typed exhaustion error (DESIGN.md)
			return sim.Respond(ErrExhausted)
		}
	}
	resp := b.inner.Apply(env, inv)
	if resp.Effect == sim.Hang {
		//detlint:allow hangsemantics Bounded IS the documented graceful-degradation boundary: it deliberately converts the inner object's hang into the typed exhaustion error (DESIGN.md)
		return sim.Respond(ErrExhausted)
	}
	return resp
}

// Exhausted reports whether a value returned through a Bounded wrapper
// is the typed exhaustion error.
func Exhausted(v sim.Value) bool {
	err, ok := v.(error)
	//detlint:allow hangsemantics checking for the boundary sentinel is part of the documented degradation contract
	return ok && err == ErrExhausted
}
