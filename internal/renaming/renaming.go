// Package renaming implements wait-free one-shot M-to-(2k−1) renaming from
// registers, the substrate Algorithm 3 needs to shrink names from a large
// space {0..M−1} to {0..2k−2} for at most k participants (paper §4.2,
// citing Afek–Merritt and Attiya–Fouren).
//
// The algorithm is the classic snapshot-based rank renaming: a process
// announces (id, proposal) in its slot, snapshots, and if its proposal
// collides with another participant's it re-proposes the r-th smallest
// name not proposed by others, where r is the rank of its id among the
// participants it sees. Since r ≤ k and at most k−1 names are held by
// others, every proposal — including the final one — is at most 2k−1, and
// the one-shot protocol is wait-free.
//
// The protocol runs over an atomic snapshot; package snapshot separately
// witnesses that snapshots are implementable from registers, so renaming
// uses register power only.
package renaming

import (
	"sort"

	"detobj/internal/sim"
	"detobj/internal/snapshot"
)

// slot is the announcement a participant publishes: its original id and
// its current proposal (1-based; 0 means "not yet proposing").
type slot struct {
	ID   int
	Prop int
}

// Protocol is a one-shot renaming instance for original names {0..M−1}.
// At most k participants may call GetName concurrently for the 2k−1 bound
// to apply; the protocol itself is safe for any number.
type Protocol struct {
	snap snapshot.Snapshotter
	m    int
}

// New registers the protocol's shared state (one snapshot slot per
// original name) under name and returns the protocol handle.
func New(objects map[string]sim.Object, name string, m int) Protocol {
	return Protocol{snap: snapshot.NewObjectHandle(objects, name, m, nil), m: m}
}

// M returns the size of the original name space.
func (p Protocol) M() int { return p.m }

// GetName acquires a new name for the participant with original name id.
// With at most k concurrent participants the result lies in {0..2k−2} and
// is distinct from every other participant's result.
func (p Protocol) GetName(ctx *sim.Ctx, id int) int {
	prop := 1
	for {
		p.snap.Update(ctx, id, slot{ID: id, Prop: prop})
		view := p.snap.Scan(ctx)
		conflict := false
		var ids []int
		taken := make(map[int]bool)
		for s, v := range view {
			if v == nil {
				continue
			}
			ann := v.(slot)
			ids = append(ids, ann.ID)
			if s == id {
				continue
			}
			taken[ann.Prop] = true
			if ann.Prop == prop {
				conflict = true
			}
		}
		if !conflict {
			return prop - 1
		}
		sort.Ints(ids)
		rank := 1
		for _, other := range ids {
			if other < id {
				rank++
			}
		}
		prop = nthFree(taken, rank)
	}
}

// nthFree returns the r-th smallest positive integer absent from taken.
func nthFree(taken map[int]bool, r int) int {
	n := 0
	//detlint:allow boundedloop terminates within len(taken)+r iterations: taken holds finitely many keys, so at most len(taken) candidates are skipped before r free ones appear
	for candidate := 1; ; candidate++ {
		if !taken[candidate] {
			n++
			if n == r {
				return candidate
			}
		}
	}
}

// Program returns a sim.Program in which the participant with original
// name id acquires and returns a new name.
func (p Protocol) Program(id int) sim.Program {
	return func(ctx *sim.Ctx) sim.Value {
		return p.GetName(ctx, id)
	}
}

// NewFromRegisters registers the protocol's shared state as an AADGMS
// snapshot implementation over single-writer registers — the fully
// register-backed variant, matching the paper's "using registers only"
// hypothesis end to end.
func NewFromRegisters(objects map[string]sim.Object, name string, m int) Protocol {
	return Protocol{snap: snapshot.NewImpl(objects, name, m, nil), m: m}
}
