package renaming

import (
	"testing"
	"testing/quick"

	"detobj/internal/sim"
	"detobj/internal/tasks"
)

// runRenaming runs one renaming instance with the given original ids and
// scheduler seed, returning new names indexed by position in ids.
func runRenaming(t *testing.T, m int, ids []int, seed int64) []int {
	t.Helper()
	objects := map[string]sim.Object{}
	p := New(objects, "REN", m)
	progs := make([]sim.Program, len(ids))
	for i, id := range ids {
		progs[i] = p.Program(id)
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.NewRandom(seed),
		MaxSteps:  1 << 18,
	})
	if err != nil {
		t.Fatalf("Run(ids=%v, seed=%d): %v", ids, seed, err)
	}
	if !res.AllDone() {
		t.Fatalf("ids=%v seed=%d: not wait-free, status %v", ids, seed, res.Status)
	}
	names := make([]int, len(ids))
	for i := range ids {
		names[i] = res.Outputs[i].(int)
	}
	return names
}

func checkNames(t *testing.T, ids, names []int, seed int64) {
	t.Helper()
	k := len(ids)
	inputs := map[int]sim.Value{}
	outputs := map[int]sim.Value{}
	for i := range ids {
		inputs[i] = ids[i]
		outputs[i] = names[i]
	}
	task := tasks.Renaming{Names: 2*k - 1}
	if err := task.Check(tasks.Outcome{Inputs: inputs, Outputs: outputs}); err != nil {
		t.Errorf("seed %d ids %v names %v: %v", seed, ids, names, err)
	}
}

func TestSoloGetsSmallestName(t *testing.T) {
	names := runRenaming(t, 16, []int{13}, 0)
	if names[0] != 0 {
		t.Errorf("solo participant got %d, want 0", names[0])
	}
}

func TestTwoParticipantsAllSeeds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		ids := []int{9, 4}
		names := runRenaming(t, 16, ids, seed)
		checkNames(t, ids, names, seed)
	}
}

func TestManyParticipants(t *testing.T) {
	cases := [][]int{
		{0, 1, 2},
		{31, 7, 19, 2},
		{5, 6, 7, 8, 9},
		{63, 0, 32, 16, 48, 8},
	}
	for _, ids := range cases {
		for seed := int64(0); seed < 10; seed++ {
			names := runRenaming(t, 64, ids, seed)
			checkNames(t, ids, names, seed)
		}
	}
}

// TestQuickRenamingProperty: random participant sets and schedules always
// produce distinct names within 0..2k−2 (the E12 substrate property).
func TestQuickRenamingProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		const m = 32
		seen := map[int]bool{}
		var ids []int
		for _, r := range raw {
			id := int(r) % m
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
			if len(ids) == 5 {
				break
			}
		}
		if len(ids) == 0 {
			return true
		}
		objects := map[string]sim.Object{}
		p := New(objects, "REN", m)
		progs := make([]sim.Program, len(ids))
		for i, id := range ids {
			progs[i] = p.Program(id)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			MaxSteps:  1 << 18,
		})
		if err != nil || !res.AllDone() {
			return false
		}
		k := len(ids)
		names := map[int]bool{}
		for i := range ids {
			name := res.Outputs[i].(int)
			if name < 0 || name >= 2*k-1 || names[name] {
				return false
			}
			names[name] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestContendedAdversarialPriority(t *testing.T) {
	// A priority adversary that always favours the largest id exercises
	// the re-proposal path heavily.
	ids := []int{3, 2, 1, 0}
	objects := map[string]sim.Object{}
	p := New(objects, "REN", 8)
	progs := make([]sim.Program, len(ids))
	for i, id := range ids {
		progs[i] = p.Program(id)
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.Priority{3, 2, 1, 0},
		MaxSteps:  1 << 18,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	names := make([]int, len(ids))
	for i := range ids {
		names[i] = res.Outputs[i].(int)
	}
	checkNames(t, ids, names, -1)
}

func TestNthFree(t *testing.T) {
	taken := map[int]bool{1: true, 3: true}
	cases := []struct{ r, want int }{{1, 2}, {2, 4}, {3, 5}}
	for _, c := range cases {
		if got := nthFree(taken, c.r); got != c.want {
			t.Errorf("nthFree(%d) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestM(t *testing.T) {
	objects := map[string]sim.Object{}
	if got := New(objects, "REN", 7).M(); got != 7 {
		t.Errorf("M = %d", got)
	}
}

// TestRenamingFromRegisters: the fully register-backed protocol (AADGMS
// snapshots underneath) still produces distinct names in 0..2k−2.
func TestRenamingFromRegisters(t *testing.T) {
	ids := []int{11, 3, 27}
	for seed := int64(0); seed < 25; seed++ {
		objects := map[string]sim.Object{}
		p := NewFromRegisters(objects, "REN", 32)
		progs := make([]sim.Program, len(ids))
		for i, id := range ids {
			progs[i] = p.Program(id)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(seed),
			MaxSteps:  1 << 20,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllDone() {
			t.Fatalf("seed %d: %v", seed, res.Status)
		}
		names := make([]int, len(ids))
		for i := range ids {
			names[i] = res.Outputs[i].(int)
		}
		checkNames(t, ids, names, seed)
	}
}
