package detobj_test

// Sequential-vs-parallel sub-benchmarks for the exhaustive engines. Every
// benchmark comes as a seq/par pair with identical workloads; cmd/benchjson
// pairs them by name and reports par's speedup over seq in BENCH_N.json.
// The parallel engines are byte-identical to the sequential ones, so the
// pairs also double as cross-checks: each iteration asserts the same
// correctness condition on both sides.
//
// Two benchmarks additionally carry a /red sub-benchmark running the
// symmetry-reduced engine on the same workload; benchjson pairs those with
// /seq into a Reductions section that also reports the allocation ratio
// (the reduced engine visits one representative per orbit and replays
// runs through an arena, so both time/op and allocs/op collapse).
//
// The parallel speedup materializes at GOMAXPROCS >= 4; at GOMAXPROCS = 1
// the parallel engines delegate to (or tie with) the sequential ones.

import (
	"fmt"
	"runtime"
	"testing"

	"detobj/internal/consensus"
	"detobj/internal/modelcheck"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

// alg2Factory is the E1 workload: k processes solving (k−1)-set consensus
// from one 1sWRN_k, explored exhaustively.
func alg2Factory(k int) modelcheck.Factory {
	return func() sim.Config {
		vs := make([]sim.Value, k)
		for i := range vs {
			vs[i] = i * 10
		}
		objects := map[string]sim.Object{}
		return sim.Config{Objects: objects, Programs: setconsensus.NewAlg2(objects, "W", vs)}
	}
}

// relaxedE4Factory is the E4 workload: procs contenders racing on a
// relaxed WRN_k wrapper, one of them alone on index 1.
func relaxedE4Factory(k, procs int) modelcheck.Factory {
	return func() sim.Config {
		objects := map[string]sim.Object{}
		rlx, _ := wrn.NewRelaxed(objects, "W", k)
		progs := make([]sim.Program, procs)
		for p := 0; p < procs; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				if p == 0 {
					return rlx.RlxWRN(ctx, 1, "solo")
				}
				return rlx.RlxWRN(ctx, 0, fmt.Sprintf("p%d", p))
			}
		}
		return sim.Config{Objects: objects, Programs: progs}
	}
}

// BenchmarkParExploreE1: exhaustive E1 check, sequential engine vs the
// worker pool at GOMAXPROCS.
func BenchmarkParExploreE1(b *testing.B) {
	const k = 6
	f := alg2Factory(k)
	task := tasks.SetConsensus{K: k - 1}
	inputs := map[int]sim.Value{}
	for i := 0; i < k; i++ {
		inputs[i] = i * 10
	}
	check := func(e modelcheck.Execution) error {
		return task.Check(tasks.OutcomeFromResult(e.Result, inputs))
	}
	run := func(b *testing.B, explore func() (int, error)) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			count, err := explore()
			if err != nil {
				b.Fatal(err)
			}
			if count == 0 {
				b.Fatal("no executions")
			}
		}
	}
	b.Run(fmt.Sprintf("k=%d/seq", k), func(b *testing.B) {
		run(b, func() (int, error) { return modelcheck.Explore(f, 0, check) })
	})
	b.Run(fmt.Sprintf("k=%d/par", k), func(b *testing.B) {
		run(b, func() (int, error) {
			return modelcheck.ExploreParallel(f, 0, runtime.GOMAXPROCS(0), check)
		})
	})
}

// BenchmarkParExploreE4: exhaustive relaxed-WRN flag-principle check,
// sequential vs parallel.
func BenchmarkParExploreE4(b *testing.B) {
	f := relaxedE4Factory(3, 4)
	check := func(e modelcheck.Execution) error {
		for i, st := range e.Result.Status {
			if st != sim.StatusDone {
				return fmt.Errorf("process %d ended %v", i, st)
			}
		}
		return nil
	}
	run := func(b *testing.B, explore func() (int, error)) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if _, err := explore(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("k=3procs=4/seq", func(b *testing.B) {
		run(b, func() (int, error) { return modelcheck.Explore(f, 0, check) })
	})
	b.Run("k=3procs=4/par", func(b *testing.B) {
		run(b, func() (int, error) {
			return modelcheck.ExploreParallel(f, 0, runtime.GOMAXPROCS(0), check)
		})
	})
	// Reduced engine: the three followers are interchangeable, so one
	// representative stands for up to 3! = 6 executions.
	sym := modelcheck.SymmetricClasses(4, []int{1, 2, 3})
	b.Run("k=3procs=4/red", func(b *testing.B) {
		run(b, func() (int, error) {
			rep, err := modelcheck.ExploreReduced(f, modelcheck.Reduced{Sym: sym}, 0,
				func(e modelcheck.Execution, orbit int) error { return check(e) })
			if err != nil {
				return 0, err
			}
			return rep.Executions, nil
		})
	})
}

// BenchmarkParValencyE11: the E11 valency analysis of the SWAP-based
// 2-consensus protocol, sequential vs parallel.
func BenchmarkParValencyE11(b *testing.B) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromSwap(objects, "C", 10, 20)
		return sim.Config{Objects: objects, Programs: progs}
	}
	run := func(b *testing.B, analyze func() (*modelcheck.ValencyReport, error)) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			rep, err := analyze()
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Agreement {
				b.Fatal("disagreement")
			}
		}
	}
	b.Run("swap/seq", func(b *testing.B) {
		run(b, func() (*modelcheck.ValencyReport, error) { return modelcheck.AnalyzeValency(f, 0) })
	})
	b.Run("swap/par", func(b *testing.B) {
		run(b, func() (*modelcheck.ValencyReport, error) {
			return modelcheck.AnalyzeValencyParallel(f, 0, runtime.GOMAXPROCS(0))
		})
	})
	// Reduced engine: the two proposers are symmetric once their input
	// values are renamed along with the processes.
	sym := modelcheck.SymmetricClasses(2, []int{0, 1})
	sym.Rename = modelcheck.RenameByInputs([]sim.Value{10, 20})
	b.Run("swap/red", func(b *testing.B) {
		run(b, func() (*modelcheck.ValencyReport, error) {
			rep, _, err := modelcheck.AnalyzeValencyReduced(f, modelcheck.Reduced{Sym: sym}, 0)
			return rep, err
		})
	})
}

// BenchmarkParIndistE6: the mechanized Lemma 38 analysis of WRN_k,
// sequential vs parallel.
func BenchmarkParIndistE6(b *testing.B) {
	for _, k := range []int{4, 5} {
		k := k
		alpha := modelcheck.WRNAlphabet(k, 2)
		run := func(b *testing.B, checkFn func() (*modelcheck.IndistReport, error)) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				rep, err := checkFn()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Clean() {
					b.Fatal("WRN failed Lemma 38 obligations")
				}
			}
		}
		b.Run(fmt.Sprintf("k=%d/seq", k), func(b *testing.B) {
			run(b, func() (*modelcheck.IndistReport, error) {
				return modelcheck.CheckIndistinguishability(wrn.New(k), alpha, 1<<15)
			})
		})
		b.Run(fmt.Sprintf("k=%d/par", k), func(b *testing.B) {
			run(b, func() (*modelcheck.IndistReport, error) {
				return modelcheck.CheckIndistinguishabilityParallel(wrn.New(k), alpha, 1<<15, runtime.GOMAXPROCS(0))
			})
		})
	}
}
