package detobj_test

// The benchmark harness regenerates every experiment of EXPERIMENTS.md:
// one benchmark per experiment, with sub-benchmarks sweeping the paper's
// parameters. Run with:
//
//	go test -bench=. -benchmem .
//
// Benchmarks measure the cost of one complete experiment unit (a full
// simulated run, an exhaustive check, or a calculus table) and assert the
// experiment's correctness condition on every iteration, so `-bench` runs
// double as high-volume validation.

import (
	"fmt"
	"testing"

	"detobj/internal/bgsim"
	"detobj/internal/consensus"
	"detobj/internal/core"
	"detobj/internal/immediate"
	"detobj/internal/iterated"
	"detobj/internal/linearize"
	"detobj/internal/modelcheck"
	"detobj/internal/registers"
	"detobj/internal/renaming"
	"detobj/internal/safeagreement"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/snapshot"
	"detobj/internal/tasks"
	"detobj/internal/universal"
	"detobj/internal/wrn"
)

// BenchmarkE1Alg2SetConsensus: one Algorithm 2 run — k processes, one
// 1sWRN_k object, (k−1)-set consensus checked.
func BenchmarkE1Alg2SetConsensus(b *testing.B) {
	for _, k := range []int{3, 5, 8, 16, 32} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			vs := make([]sim.Value, k)
			inputs := map[int]sim.Value{}
			for i := range vs {
				vs[i] = i
				inputs[i] = i
			}
			task := tasks.SetConsensus{K: k - 1}
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				objects := map[string]sim.Object{}
				progs := setconsensus.NewAlg2(objects, "W", vs)
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(int64(n)),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := task.Check(tasks.OutcomeFromResult(res, inputs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Alg3ManyProcs: one Algorithm 3 run — renaming plus the
// covering family of relaxed WRN_k instances.
func BenchmarkE3Alg3ManyProcs(b *testing.B) {
	for _, cfg := range []struct{ k, m int }{{3, 16}, {3, 64}, {4, 32}} {
		cfg := cfg
		b.Run(fmt.Sprintf("k=%d/M=%d", cfg.k, cfg.m), func(b *testing.B) {
			family := setconsensus.CoveringFamily(cfg.k)
			ids := make([]int, cfg.k)
			for i := range ids {
				ids[i] = (i * (cfg.m/cfg.k + 1)) % cfg.m
			}
			task := tasks.SetConsensus{K: cfg.k - 1}
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				objects := map[string]sim.Object{}
				a, _ := setconsensus.NewAlg3(objects, "A", cfg.k, cfg.m, family)
				inputs := map[int]sim.Value{}
				progs := make([]sim.Program, cfg.k)
				for p, id := range ids {
					inputs[p] = 1000 + id
					progs[p] = a.Program(id, 1000+id)
				}
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(int64(n)),
					MaxSteps:  1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := task.Check(tasks.OutcomeFromResult(res, inputs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4RlxWRN: a contended relaxed-WRN round — five processes race
// on one index; the flag principle must hold every time.
func BenchmarkE4RlxWRN(b *testing.B) {
	const procs = 5
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		objects := map[string]sim.Object{}
		rlx, one := wrn.NewRelaxed(objects, "W", 3)
		progs := make([]sim.Program, procs)
		for p := 0; p < procs; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				return rlx.RlxWRN(ctx, 0, p)
			}
		}
		if _, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(int64(n))}); err != nil {
			b.Fatal(err)
		}
		if one.Invocations(0) > 1 {
			b.Fatal("illegal one-shot use")
		}
	}
}

// BenchmarkE5Alg5Linearizable: one Algorithm 5 run plus the
// linearizability check of its history.
func BenchmarkE5Alg5Linearizable(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			spec := wrn.Spec(k)
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				objects := map[string]sim.Object{}
				impl := wrn.NewImpl(objects, "LW", k)
				progs := make([]sim.Program, k)
				for i := 0; i < k; i++ {
					i := i
					progs[i] = func(ctx *sim.Ctx) sim.Value {
						return impl.TracedWRN(ctx, i, 100+i)
					}
				}
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(int64(n)),
					Seed:      int64(n),
				})
				if err != nil {
					b.Fatal(err)
				}
				ops := linearize.Ops(res.Trace, impl.Name())
				if !linearize.Check(spec, ops).OK {
					b.Fatal("not linearizable")
				}
			}
		})
	}
}

// BenchmarkE6Impossibility: the full mechanized Lemma 38 analysis of
// WRN_k over its reachable state space.
func BenchmarkE6Impossibility(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			alpha := modelcheck.WRNAlphabet(k, 2)
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				rep, err := modelcheck.CheckIndistinguishability(wrn.New(k), alpha, 1<<15)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Clean() {
					b.Fatal("WRN failed Lemma 38 obligations")
				}
			}
		})
	}
}

// BenchmarkE7Matrix: the Theorem 41 implementability matrix up to n = 64.
func BenchmarkE7Matrix(b *testing.B) {
	sources := []core.SetCons{{N: 3, K: 2}, {N: 4, K: 3}, {N: 6, K: 2}, {N: 9, K: 4}}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		for _, src := range sources {
			m := core.ImplementabilityMatrix(src, 64)
			if len(m) != 63 {
				b.Fatal("bad matrix")
			}
		}
	}
}

// BenchmarkE8Hierarchy: the full pairwise 1sWRN ordering table.
func BenchmarkE8Hierarchy(b *testing.B) {
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		levels := core.WRNHierarchyLevels(40)
		for i := range levels {
			for j := range levels[i] {
				want := core.Equivalent
				if i < j {
					want = core.Stronger
				} else if i > j {
					want = core.Weaker
				}
				if levels[i][j] != want {
					b.Fatal("hierarchy violated")
				}
			}
		}
	}
}

// BenchmarkE9Ratio: one Algorithm 6 run at the paper's (12,8) example.
func BenchmarkE9Ratio(b *testing.B) {
	for _, cfg := range []struct{ n, k int }{{12, 3}, {24, 3}, {20, 5}} {
		cfg := cfg
		b.Run(fmt.Sprintf("n=%d/k=%d", cfg.n, cfg.k), func(b *testing.B) {
			task := tasks.SetConsensus{K: setconsensus.Guarantee(cfg.n, cfg.k)}
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				objects := map[string]sim.Object{}
				a := setconsensus.NewAlg6(objects, "G", cfg.n, cfg.k)
				inputs := map[int]sim.Value{}
				progs := make([]sim.Program, cfg.n)
				for i := 0; i < cfg.n; i++ {
					inputs[i] = i
					progs[i] = a.Program(i, i)
				}
				res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(int64(n))})
				if err != nil {
					b.Fatal(err)
				}
				if err := task.Check(tasks.OutcomeFromResult(res, inputs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Hierarchy: computing and verifying all O(n,k) separations.
func BenchmarkE10Hierarchy(b *testing.B) {
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		for cons := 2; cons <= 6; cons++ {
			f := core.Family{N: cons}
			for k := 1; k <= 4; k++ {
				if !f.Separation(k).Separated() {
					b.Fatal("separation failed")
				}
				if f.At(k).ConsensusNumber() != cons {
					b.Fatal("consensus number drifted")
				}
			}
		}
	}
}

// BenchmarkE11Valency: exhaustive valency analysis of the SWAP-based
// 2-consensus protocol.
func BenchmarkE11Valency(b *testing.B) {
	f := func() sim.Config {
		objects := map[string]sim.Object{}
		progs := consensus.TwoConsFromSwap(objects, "C", 10, 20)
		return sim.Config{Objects: objects, Programs: progs}
	}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		rep, err := modelcheck.AnalyzeValency(f, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Agreement {
			b.Fatal("disagreement")
		}
	}
}

// BenchmarkE12Substrates: the snapshot and renaming substrates — one
// AADGMS workload and one renaming round per iteration.
func BenchmarkE12Substrates(b *testing.B) {
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			objects := map[string]sim.Object{}
			s := snapshot.NewImpl(objects, "R", 3, nil)
			progs := make([]sim.Program, 3)
			for i := 0; i < 3; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					s.Update(ctx, i, i)
					return s.Scan(ctx)[i]
				}
			}
			res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(int64(n))})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if res.Outputs[i] != i {
					b.Fatal("snapshot lost an update")
				}
			}
		}
	})
	b.Run("renaming", func(b *testing.B) {
		ids := []int{19, 3, 27, 8}
		task := tasks.Renaming{Names: 2*len(ids) - 1}
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			objects := map[string]sim.Object{}
			p := renaming.New(objects, "REN", 32)
			progs := make([]sim.Program, len(ids))
			inputs := map[int]sim.Value{}
			for i, id := range ids {
				inputs[i] = id
				progs[i] = p.Program(id)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(int64(n)),
				MaxSteps:  1 << 18,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := task.Check(tasks.OutcomeFromResult(res, inputs)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimThroughput measures raw simulator step throughput: one
// process hammering a counter.
func BenchmarkSimThroughput(b *testing.B) {
	const stepsPerRun = 4096
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		objects := map[string]sim.Object{"C": registers.NewCounter()}
		c := registers.CounterRef{Name: "C"}
		res, err := sim.Run(sim.Config{
			Objects: objects,
			Programs: []sim.Program{func(ctx *sim.Ctx) sim.Value {
				for i := 0; i < stepsPerRun-1; i++ {
					c.Inc(ctx)
				}
				return c.Read(ctx)
			}},
			DisableTrace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Steps != stepsPerRun {
			b.Fatal("step miscount")
		}
	}
	b.ReportMetric(float64(stepsPerRun), "steps/op")
}

// BenchmarkE13BGSimulation: one full BG simulation — n simulators jointly
// executing the m-process participating-set protocol through safe
// agreements.
func BenchmarkE13BGSimulation(b *testing.B) {
	for _, cfg := range []struct{ n, m int }{{2, 3}, {3, 4}, {4, 6}} {
		cfg := cfg
		b.Run(fmt.Sprintf("sims=%d/procs=%d", cfg.n, cfg.m), func(b *testing.B) {
			inputs := make([]sim.Value, cfg.m)
			for i := range inputs {
				inputs[i] = i
			}
			proto := bgsim.Protocol{
				Rounds: 1,
				Write:  func(_ int, input sim.Value, _ [][]sim.Value) sim.Value { return input },
				Decide: func(_ int, _ sim.Value, scans [][]sim.Value) sim.Value {
					seen := 0
					for _, v := range scans[0] {
						if v != nil {
							seen++
						}
					}
					return seen
				},
			}
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				objects := map[string]sim.Object{}
				s := bgsim.New(objects, "BG", cfg.n, inputs, proto, 0)
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  s.Programs(),
					Scheduler: sim.NewRandom(int64(n)),
					MaxSteps:  1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < cfg.n; i++ {
					out := res.Outputs[i].(bgsim.Outputs)
					for p := 0; p < cfg.m; p++ {
						if out[p] == nil {
							b.Fatal("simulated process blocked with no crashes")
						}
					}
				}
			}
		})
	}
}

// BenchmarkE14ImmediateSnapshot: one full immediate-snapshot round with
// its three-property check.
func BenchmarkE14ImmediateSnapshot(b *testing.B) {
	for _, n := range []int{3, 5, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			task := tasks.ImmediateSnapshot{}
			b.ReportAllocs()
			for iter := 0; iter < b.N; iter++ {
				objects := map[string]sim.Object{}
				pr := immediate.New(objects, "IS", n)
				inputs := map[int]sim.Value{}
				progs := make([]sim.Program, n)
				for i := 0; i < n; i++ {
					v := i * 10
					inputs[i] = v
					progs[i] = pr.Program(i, v)
				}
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(int64(iter)),
				})
				if err != nil {
					b.Fatal(err)
				}
				o := tasks.OutcomeFromResult(res, inputs)
				if err := task.Check(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSafeAgreement: one propose+resolve round for n proposers.
func BenchmarkSafeAgreement(b *testing.B) {
	const n = 4
	b.ReportAllocs()
	for iter := 0; iter < b.N; iter++ {
		objects := map[string]sim.Object{}
		sa := safeagreement.New(objects, "SA", n)
		progs := make([]sim.Program, n)
		for i := 0; i < n; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				sa.Propose(ctx, i, i)
				return sa.ResolveBlocking(ctx)
			}
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sim.NewRandom(int64(iter)),
			MaxSteps:  1 << 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 1; i < n; i++ {
			if res.Outputs[i] != res.Outputs[0] {
				b.Fatal("safe agreement disagreed")
			}
		}
	}
}

// BenchmarkE15Universal: one universal-construction round — n processes
// each apply one operation through consensus cells, then the history is
// linearizability-checked.
func BenchmarkE15Universal(b *testing.B) {
	counterSpec := linearize.Spec{
		Init: func() any { return 0 },
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			v := state.(int)
			if name == "inc" {
				return v + 1, v + 1
			}
			return v, v
		},
	}
	for _, n := range []int{2, 3, 5} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for iter := 0; iter < b.N; iter++ {
				objects := map[string]sim.Object{}
				u := universal.New(objects, "U", n, 8*n, counterSpec)
				progs := make([]sim.Program, n)
				for p := 0; p < n; p++ {
					p := p
					progs[p] = func(ctx *sim.Ctx) sim.Value {
						ctx.BeginOp("CTR", "inc")
						out := u.NewSession(p).Apply(ctx, "inc")
						ctx.EndOp("CTR", "inc", out)
						return out
					}
				}
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(int64(iter)),
					MaxSteps:  1 << 18,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !linearize.Check(counterSpec, linearize.Ops(res.Trace, "CTR")).OK {
					b.Fatal("universal counter not linearizable")
				}
			}
		})
	}
}

// BenchmarkE16ProtocolComplex: exhaustively enumerating the one-round
// two-process protocol complex (16 executions, 3 simplices) per iteration.
func BenchmarkE16ProtocolComplex(b *testing.B) {
	b.ReportAllocs()
	for iter := 0; iter < b.N; iter++ {
		seen := map[string]bool{}
		_, err := modelcheck.Explore(func() sim.Config {
			objects := map[string]sim.Object{}
			pr := iterated.New(objects, "IIS", 2, 1)
			progs := make([]sim.Program, 2)
			for i := 0; i < 2; i++ {
				progs[i] = pr.Program(i, fmt.Sprintf("v%d", i))
			}
			return sim.Config{Objects: objects, Programs: progs}
		}, 0, func(e modelcheck.Execution) error {
			seen[iterated.OutcomeSignature(e.Result.Outputs)] = true
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(seen) != 3 {
			b.Fatalf("patterns = %d, want 3", len(seen))
		}
	}
}
