package main

import (
	"strings"
	"testing"
)

func TestUniversalExampleRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"client 0",
		"client 2",
		"history linearizes as:",
		"consensus number 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
