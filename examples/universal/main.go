// Universal: build any object out of consensus — and see where that
// power ends.
//
// Herlihy's universality theorem (the backdrop of the paper) says that
// with n-process consensus you can implement ANY sequentially specified
// object wait-free for n processes. This example uses the library's
// universal construction to build a bank-account object (deposit /
// withdraw-if-sufficient) from consensus cells, runs concurrent clients
// against it, and verifies the history linearizes. It then contrasts this
// with the paper's world below consensus: WRN objects can never support
// such a construction, yet are strictly stronger than registers.
//
// Run with: go run ./examples/universal
package main

import (
	"fmt"
	"io"
	"os"

	"detobj"
	"detobj/internal/linearize"
	"detobj/internal/universal"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "universal:", err)
		os.Exit(1)
	}
}

// accountSpec is a bank account: "deposit"(x) returns the new balance;
// "withdraw"(x) returns the new balance, or refuses (returning the old
// balance unchanged) when funds are insufficient.
func accountSpec() detobj.LinSpec {
	return detobj.LinSpec{
		Init: func() any { return 0 },
		Apply: func(state any, name string, args []detobj.Value) (any, detobj.Value) {
			balance := state.(int)
			amount := args[0].(int)
			switch name {
			case "deposit":
				return balance + amount, balance + amount
			case "withdraw":
				if amount > balance {
					return balance, balance // refused
				}
				return balance - amount, balance - amount
			default:
				panic("unknown op " + name)
			}
		},
	}
}

func run(w io.Writer) error {
	const clients = 3
	spec := accountSpec()
	fmt.Fprintf(w, "Universal construction: a bank account shared by %d clients,\n", clients)
	fmt.Fprintln(w, "built from nothing but consensus cells and registers.")
	fmt.Fprintln(w)

	objects := map[string]detobj.Object{}
	u := universal.New(objects, "BANK", clients, 64, spec)
	ops := [][]struct {
		name   string
		amount int
	}{
		{{"deposit", 100}, {"withdraw", 30}},
		{{"deposit", 50}, {"withdraw", 500}},
		{{"withdraw", 20}, {"deposit", 10}},
	}
	progs := make([]detobj.Program, clients)
	for p := 0; p < clients; p++ {
		p := p
		progs[p] = func(ctx *detobj.Ctx) detobj.Value {
			sess := u.NewSession(p)
			var results []detobj.Value
			for _, op := range ops[p] {
				ctx.BeginOp("BANK", op.name, op.amount)
				out := sess.Apply(ctx, op.name, op.amount)
				ctx.EndOp("BANK", op.name, out)
				results = append(results, fmt.Sprintf("%s(%d)->%v", op.name, op.amount, out))
			}
			return results
		}
	}
	res, err := detobj.Run(detobj.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: detobj.NewRandomScheduler(2026),
	})
	if err != nil {
		return err
	}
	for p := 0; p < clients; p++ {
		fmt.Fprintf(w, "client %d: %v\n", p, res.Outputs[p])
	}

	history := detobj.LinOps(res.Trace, "BANK")
	result := linearize.Check(spec, history)
	if !result.OK {
		return fmt.Errorf("account history not linearizable")
	}
	fmt.Fprintln(w, "\nhistory linearizes as:")
	fmt.Fprintln(w, " ", linearize.Explain(history, result))

	fmt.Fprintln(w, "\nWhere universality ends (the paper's territory):")
	fmt.Fprintf(w, "  this construction needs consensus number >= %d; WRN_5 has consensus number %d,\n",
		clients, detobj.WRNConsensusNumber(5))
	fmt.Fprintf(w, "  so no WRN object can power it — yet 1sWRN_5 still solves %v,\n", detobj.WRNEquivalent(5))
	fmt.Fprintln(w, "  which registers cannot. Synchronization power is not one ladder.")
	return nil
}
