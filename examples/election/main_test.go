package main

import (
	"strings"
	"testing"
)

func TestElectionRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "Coordinator election") {
		t.Error("missing header")
	}
	if strings.Contains(out, "false") {
		t.Errorf("a round exceeded the coordinator bound:\n%s", out)
	}
	if got := strings.Count(out, "true"); got != 5 {
		t.Errorf("%d successful rounds, want 5", got)
	}
}
