// Election: coordinator selection among a dynamic subset of nodes.
//
// A cluster has 32 possible node identities but at any moment only k = 3
// of them wake up to pick coordinators for a maintenance task. The nodes
// must narrow themselves to at most 2 coordinators — sub-consensus
// agreement — without knowing in advance which three will participate.
// This is exactly Algorithm 3 of the paper: wait-free renaming shrinks 32
// names to 5, then a family of relaxed WRN_3 instances yields 2-set
// consensus on the participants' identifiers.
//
// Run with: go run ./examples/election
package main

import (
	"fmt"
	"io"
	"os"

	"detobj"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "election:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	const (
		k = 3  // participants per round
		m = 32 // name-space size
	)
	family := detobj.CoveringFamily(k)
	fmt.Fprintf(w, "Coordinator election: %d-of-%d nodes, %d relaxed WRN_%d instances\n\n", k, m, family.Len(), k)
	fmt.Fprintln(w, "round  participants     coordinators        distinct<=2")

	wakeups := [][]int{
		{4, 17, 29},
		{0, 1, 2},
		{31, 15, 7},
		{22, 9, 30},
		{5, 6, 20},
	}
	task := detobj.SetConsensusTask{K: k - 1}
	for round, ids := range wakeups {
		objects := map[string]detobj.Object{}
		alg := detobj.NewAlg3(objects, "elect", k, m, family)
		inputs := map[int]detobj.Value{}
		programs := make([]detobj.Program, k)
		for p, id := range ids {
			// Each node proposes its own identity: k-set election.
			inputs[p] = id
			programs[p] = alg.Program(id, id)
		}
		res, err := detobj.Run(detobj.Config{
			Objects:   objects,
			Programs:  programs,
			Scheduler: detobj.NewRandomScheduler(int64(round) * 1331),
		})
		if err != nil {
			return err
		}
		outcome := detobj.OutcomeFromResult(res, inputs)
		if err := task.Check(outcome); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Fprintf(w, "%-6d %-16s %-19s %v\n", round, fmt.Sprint(ids), fmt.Sprint(res.Outputs), outcome.DistinctOutputs() <= k-1)
	}

	fmt.Fprintln(w, "\nEvery round ends with at most 2 coordinators, each the identity of a")
	fmt.Fprintln(w, "participating node — agreement power strictly beyond registers, with an")
	fmt.Fprintln(w, "object that cannot even solve 2-process consensus.")
	return nil
}
