package main

import (
	"strings"
	"testing"
)

func TestHierarchyExplorerRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"Platform primitive",
		"Upgrade analysis",
		"O(3,1)",
		"consensus number 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
