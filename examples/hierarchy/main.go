// Hierarchy explorer: capability planning with the synchronization-power
// calculus.
//
// Suppose a platform ships hardware that natively provides (m,j)-set
// consensus (for example, 1sWRN_k devices, which are (k,k−1)). Before
// designing a protocol, an engineer wants to know which agreement tasks
// the platform can support at which scales — without writing a line of
// protocol code. The calculus of Theorem 41 answers this exactly.
//
// Run with: go run ./examples/hierarchy
package main

import (
	"fmt"
	"io"
	"os"

	"detobj"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	// Scenario 1: the platform has WRN_3 devices. What can n processes
	// agree on?
	src := detobj.WRNEquivalent(3)
	fmt.Fprintf(w, "Platform primitive: 1sWRN_3 ≡ %v\n\n", src)
	fmt.Fprintln(w, "processes  best-achievable-agreement  paper-ratio-bound ((k-1)/k·n)")
	for n := 3; n <= 15; n += 3 {
		best := detobj.MinAgreement(n, src.N, src.K)
		fmt.Fprintf(w, "%-10d %-26d %d\n", n, best, (src.K*n+src.N-1)/src.N)
	}

	// Scenario 2: upgrading the device. Is it worth buying 1sWRN_4?
	fmt.Fprintln(w, "\nUpgrade analysis (Corollary 42): can device A replace device B?")
	fmt.Fprintln(w, "A \\ B    1sWRN_3  1sWRN_4  1sWRN_5  1sWRN_6")
	for a := 3; a <= 6; a++ {
		fmt.Fprintf(w, "1sWRN_%d  ", a)
		for b := 3; b <= 6; b++ {
			ea, eb := detobj.WRNEquivalent(a), detobj.WRNEquivalent(b)
			fmt.Fprintf(w, "%-8v ", detobj.Implements(ea.N, ea.K, eb.N, eb.K))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(smaller k is strictly stronger: rows can replace columns to their right only)")

	// Scenario 3: levels above consensus number 1 — the O(n,k) family.
	fmt.Fprintln(w, "\nThe same phenomenon at consensus level 3 (PODC'16, reconstructed family):")
	fam := detobj.Family{N: 3}
	for k := 1; k <= 3; k++ {
		member := fam.At(k)
		wit := fam.Separation(k)
		fmt.Fprintf(w, "  O(3,%d) = %v: consensus number %d; O(3,%d) beats it at %d processes (%d vs %d values)\n",
			k, member, member.ConsensusNumber(), k+1, wit.Procs, wit.TaskK, wit.WeakerBest)
	}
	fmt.Fprintln(w, "\nConsensus number alone cannot rank these objects — the calculus can.")
	return nil
}
