// Native: the paper's objects in a real concurrent program — no
// simulator, just goroutines.
//
// A fleet of 12 workers must converge on a small set of configuration
// epochs (at most 8 distinct, per the paper's §7.1 ratio), and a dynamic
// trio of nodes out of 32 must narrow themselves to at most 2
// coordinators (Algorithm 3). Both run here with plain goroutines on the
// race-detector-clean native package.
//
// Run with: go run ./examples/native
package main

import (
	"fmt"
	"io"
	"os"
	"sync"

	"detobj/native"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "native:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	// Part 1: Algorithm 6 — 12 workers, WRN_3 groups, at most 8 epochs.
	const workers, k = 12, 3
	sc := native.NewSetConsensus(workers, k)
	fmt.Fprintf(w, "Algorithm 6 natively: %d goroutines, guarantee %d distinct epochs\n", workers, sc.Guarantee())

	decisions := make([]any, workers)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := sc.Propose(id, fmt.Sprintf("epoch-%d", id))
			if err == nil {
				decisions[id] = out
			}
		}()
	}
	wg.Wait()
	distinct := map[any]bool{}
	for _, d := range decisions {
		distinct[d] = true
	}
	fmt.Fprintf(w, "  %d goroutines converged on %d epochs (bound %d)\n\n", workers, len(distinct), sc.Guarantee())
	if len(distinct) > sc.Guarantee() {
		return fmt.Errorf("guarantee violated")
	}

	// Part 2: Algorithm 3 — three nodes out of 32 elect ≤ 2 coordinators.
	e := native.NewElection(3, 32)
	nodes := []int{7, 19, 28}
	fmt.Fprintf(w, "Algorithm 3 natively: nodes %v of 32 elect coordinators\n", nodes)
	coords := make([]any, len(nodes))
	for p, id := range nodes {
		p, id := p, id
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := e.Propose(id, id)
			if err == nil {
				coords[p] = out
			}
		}()
	}
	wg.Wait()
	leaders := map[any]bool{}
	for _, c := range coords {
		leaders[c] = true
	}
	fmt.Fprintf(w, "  decisions %v — %d coordinator(s), bound 2\n", coords, len(leaders))
	if len(leaders) > 2 {
		return fmt.Errorf("coordinator bound violated")
	}
	fmt.Fprintln(w, "\nThe same algorithms were verified exhaustively in the simulator;")
	fmt.Fprintln(w, "here they run on real shared memory, race-detector clean.")
	return nil
}
