package main

import (
	"strings"
	"testing"
)

func TestNativeExampleRuns(t *testing.T) {
	for round := 0; round < 50; round++ {
		var b strings.Builder
		if err := run(&b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		out := b.String()
		if !strings.Contains(out, "guarantee 8") {
			t.Errorf("missing guarantee line:\n%s", out)
		}
		if !strings.Contains(out, "coordinator") {
			t.Errorf("missing coordinator line:\n%s", out)
		}
	}
}
