package main

import (
	"strings"
	"testing"
)

func TestQuickstartRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "Algorithm 2") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "consensus number: 1") {
		t.Error("missing consensus-number line")
	}
	if !strings.Contains(out, "2-consensus? false") {
		t.Error("missing the negative 2-consensus answer")
	}
}
