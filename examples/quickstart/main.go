// Quickstart: solve (k−1)-set consensus among k processes with a single
// one-shot WRN_k object (the paper's Algorithm 2), using only the public
// detobj API.
//
// Five replicas must each adopt a configuration version, and at most four
// distinct versions may survive — strictly fewer choices than processes,
// which registers alone provably cannot guarantee, yet no consensus
// hardware is needed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	"detobj"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	const k = 5
	proposals := []detobj.Value{"v1.0", "v1.1", "v2.0", "v2.1", "v3.0"}

	fmt.Fprintf(w, "Algorithm 2: %d replicas, one 1sWRN_%d object, at most %d surviving versions\n\n", k, k, k-1)
	fmt.Fprintln(w, "schedule        decisions                          distinct")

	inputs := map[int]detobj.Value{}
	for i, v := range proposals {
		inputs[i] = v
	}
	task := detobj.SetConsensusTask{K: k - 1}

	for seed := int64(0); seed < 8; seed++ {
		objects := map[string]detobj.Object{}
		programs := detobj.NewAlg2(objects, "W", proposals)
		res, err := detobj.Run(detobj.Config{
			Objects:   objects,
			Programs:  programs,
			Scheduler: detobj.NewRandomScheduler(seed),
		})
		if err != nil {
			return err
		}
		outcome := detobj.OutcomeFromResult(res, inputs)
		if err := task.Check(outcome); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		fmt.Fprintf(w, "random(seed=%d)  %-34s %d\n", seed, fmt.Sprint(res.Outputs), outcome.DistinctOutputs())
	}

	fmt.Fprintln(w, "\nWhy this is interesting (the paper's theorems):")
	fmt.Fprintf(w, "  WRN_%d consensus number: %d — it cannot make two processes agree\n", k, detobj.WRNConsensusNumber(k))
	fmt.Fprintf(w, "  yet 1sWRN_%d ≡ %v, which registers cannot solve\n", k, detobj.WRNEquivalent(k))
	fmt.Fprintf(w, "  can 1sWRN_%d implement 2-consensus? %v\n", k, detobj.Implements(k, k-1, 2, 1))
	return nil
}
