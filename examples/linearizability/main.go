// Linearizability: watch Algorithm 5 build an atomic object out of
// non-atomic parts.
//
// The paper's Algorithm 5 implements a 1sWRN_k object from a strong
// set-election object, a doorway register, and two snapshot arrays. This
// example runs concurrent invocations against the implementation, records
// the real-time history, asks the checker for a linearization, and prints
// it — then shows a deliberately corrupted history being rejected.
//
// Run with: go run ./examples/linearizability
package main

import (
	"fmt"
	"io"
	"os"

	"detobj"
	"detobj/internal/linearize"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "linearizability:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	const k = 4
	fmt.Fprintf(w, "Algorithm 5: linearizable 1sWRN_%d from strong set election\n\n", k)

	for seed := int64(0); seed < 4; seed++ {
		objects := map[string]detobj.Object{}
		impl := detobj.NewWRNImpl(objects, "LW", k)
		programs := make([]detobj.Program, k)
		for i := 0; i < k; i++ {
			i := i
			programs[i] = func(ctx *detobj.Ctx) detobj.Value {
				return impl.TracedWRN(ctx, i, fmt.Sprintf("w%d", i))
			}
		}
		res, err := detobj.Run(detobj.Config{
			Objects:   objects,
			Programs:  programs,
			Scheduler: detobj.NewRandomScheduler(seed),
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		ops := detobj.LinOps(res.Trace, impl.Name())
		result := linearize.Check(detobj.WRNSpec(k), ops)
		if !result.OK {
			return fmt.Errorf("seed %d: history unexpectedly not linearizable", seed)
		}
		fmt.Fprintf(w, "seed %d: %d concurrent WRN invocations, %d base steps\n",
			seed, len(ops), res.Trace.Steps())
		fmt.Fprintf(w, "  linearization: %s\n\n", linearize.Explain(ops, result))
	}

	// A corrupted history: claim some invocation read a value nobody wrote.
	bad := []detobj.LinOp{
		{Proc: 0, Name: "WRN", Args: []detobj.Value{0, "w0"}, Out: "phantom", Call: 0, Return: 1},
	}
	if detobj.LinCheck(detobj.WRNSpec(k), bad) {
		return fmt.Errorf("corrupted history accepted")
	}
	fmt.Fprintln(w, "corrupted history (read of a phantom value): rejected, as it must be")
	return nil
}
