package main

import (
	"strings"
	"testing"
)

func TestLinearizabilityExampleRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if got := strings.Count(out, "linearization:"); got != 4 {
		t.Errorf("%d linearizations printed, want 4", got)
	}
	if !strings.Contains(out, "rejected") {
		t.Error("corrupted-history rejection missing")
	}
}
