package detobj_test

// Soak campaigns: high-volume randomized validation of the paper's
// algorithms, skipped under -short. The default `go test ./...` runs them;
// CI-style quick runs use `go test -short ./...`.
//
// Seed sweeps fan out over par.ForEach: every run is a pure function of
// its seed, workers report errors instead of calling t.Fatal (which must
// run on the test goroutine), and ForEach surfaces the lowest-seed
// failure — the same one the sequential loop would have hit first.

import (
	"fmt"
	"testing"

	"detobj/internal/chaos"
	"detobj/internal/linearize"
	"detobj/internal/par"
	"detobj/internal/recoverable"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

// TestSoakAlg5Linearizability: 1500 schedules per k across k = 2..6, each
// history checked.
func TestSoakAlg5Linearizability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for k := 2; k <= 6; k++ {
		k := k
		spec := wrn.Spec(k)
		err := par.ForEach(1500, 0, func(s int) error {
			seed := int64(s)
			objects := map[string]sim.Object{}
			impl := wrn.NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(seed),
				Seed:      seed * 7,
				MaxSteps:  1 << 18,
			})
			if err != nil {
				return fmt.Errorf("k=%d seed=%d: %w", k, seed, err)
			}
			if !linearize.Check(spec, linearize.Ops(res.Trace, impl.Name())).OK {
				return fmt.Errorf("k=%d seed=%d: not linearizable", k, seed)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSoakAlg3Campaign: 400 runs of Algorithm 3 over rotating participant
// sets and both crash-free and crashing adversaries.
func TestSoakAlg3Campaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const k, m = 3, 32
	family := setconsensus.CoveringFamily(k)
	task := tasks.SetConsensus{K: k - 1}
	err := par.ForEach(400, 0, func(trial int) error {
		ids := []int{(trial * 3) % m, (trial*3 + 11) % m, (trial*3 + 19) % m}
		objects := map[string]sim.Object{}
		a, ones := setconsensus.NewAlg3(objects, "A", k, m, family)
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, k)
		for p, id := range ids {
			v := fmt.Sprintf("v%d", id)
			inputs[p] = v
			progs[p] = a.Program(id, v)
		}
		var sched sim.Scheduler = sim.NewRandom(int64(trial))
		if trial%4 == 3 {
			sched = sim.NewCrashing(sim.NewRandom(int64(trial)), trial%k)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sched,
			MaxSteps:  1 << 20,
		})
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		for l, one := range ones {
			for i := 0; i < k; i++ {
				if one.Invocations(i) > 1 {
					return fmt.Errorf("trial %d: instance %d index %d used twice", trial, l, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSoakChaosAdversaries: the chaos sweep — every adversary stack over
// Algorithm 5, 300 seeds each, replay-verified, with the crash history
// (pending operations included) checked for linearizability. A failure
// names the seed; `go run ./cmd/chaos -scenario sim -start <seed>
// -seeds 1` reproduces the run byte for byte.
func TestSoakChaosAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const k = 4
	stacks := []struct {
		name string
		mk   func(seed int64, r *chaos.Report) sim.Scheduler
	}{
		{"crash-during-op", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashDuringOp(sim.NewRandom(seed), r, int(seed)%k, int(seed)%6)
		}},
		{"crash-recovery", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashRecovery(sim.NewRandom(seed), r, int(seed)%k, int(seed)%10, 25)
		}},
		{"stall", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewStall(sim.NewRandom(seed), r, int(seed)%k, int(seed)%8, 50)
		}},
		{"adaptive", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewAdaptive(seed, r)
		}},
		{"composed", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewStall(
				chaos.NewCrashDuringOp(chaos.NewAdaptive(seed, r), r, int(seed)%k, 2),
				r, (int(seed)+1)%k, 5, 30)
		}},
	}
	spec := wrn.Spec(k)
	for _, s := range stacks {
		s := s
		err := par.ForEach(300, 0, func(sd int) error {
			seed := int64(sd)
			r := chaos.NewReport(seed)
			objects := map[string]sim.Object{}
			impl := wrn.NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:      objects,
				Programs:     progs,
				Scheduler:    chaos.Instrument(s.mk(seed, r), r),
				Seed:         seed,
				MaxSteps:     1 << 18,
				VerifyReplay: true,
			})
			if err != nil {
				return fmt.Errorf("%s seed=%d: %w\n%s", s.name, seed, err, r)
			}
			done, pending := linearize.OpsWithPending(res.Trace, impl.Name())
			if !linearize.Check(spec, append(done, pending...)).OK {
				return fmt.Errorf("%s seed=%d: chaos history not linearizable\n%s", s.name, seed, r)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSoakCrashRestartRecoverable: the crash-restart soak — every
// restart adversary stack over the recoverable WRN_k, 300 seeds each,
// replay-verified. Each run must terminate with every process Done, an
// exact restart ledger (Restarts == Crashes, Recoveries == 0: amnesiac
// restarts are not stop-the-world recoveries), and a durable journal
// proving each operation mutated the cells exactly once no matter how
// many incarnations re-invoked it. `go run ./cmd/chaos -scenario
// restart -start <seed> -seeds 1` reproduces a failing seed.
func TestSoakCrashRestartRecoverable(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const k = 3
	stacks := []struct {
		name string
		mk   func(seed int64, r *chaos.Report) sim.Scheduler
	}{
		{"crash-restart", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashRestart(sim.NewRandom(seed), r, int(seed)%k, 2+int(seed)%5, 3)
		}},
		{"repeated-restart", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewRepeatedCrashRestart(sim.NewRandom(seed), r, int(seed)%k, 2, 2, 3)
		}},
		{"adaptive-restart", func(seed int64, r *chaos.Report) sim.Scheduler {
			return chaos.NewAdaptiveRestart(sim.NewRandom(seed), r, seed, 4)
		}},
	}
	for _, s := range stacks {
		s := s
		err := par.ForEach(300, 0, func(sd int) error {
			seed := int64(sd)
			r := chaos.NewReport(seed)
			objects := map[string]sim.Object{}
			wrh := recoverable.NewWRN(objects, "RW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					ctx.BeginOp("RW", "WRN", i, 100+i)
					out := wrh.WRN(ctx, i, i, 100+i)
					ctx.EndOp("RW", "WRN", out)
					return out
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:      objects,
				Programs:     progs,
				Scheduler:    chaos.Instrument(s.mk(seed, r), r),
				Recovery:     wrh.Recovery(func(proc int) int { return proc }),
				Seed:         seed,
				MaxSteps:     1 << 18,
				VerifyReplay: true,
			})
			if err != nil {
				return fmt.Errorf("%s seed=%d: %w\n%s", s.name, seed, err, r)
			}
			for p, st := range res.Status {
				if st != sim.StatusDone {
					return fmt.Errorf("%s seed=%d: proc %d status %v, want Done\n%s", s.name, seed, p, st, r)
				}
			}
			if r.Recoveries() != 0 || r.Restarts() != r.Crashes() {
				return fmt.Errorf("%s seed=%d: restart ledger off: crashes=%d restarts=%d recoveries=%d",
					s.name, seed, r.Crashes(), r.Restarts(), r.Recoveries())
			}
			core := objects["RW.core"].(*recoverable.WRNCore)
			for opid := 0; opid < k; opid++ {
				if n := core.ApplyCount(opid); n != 1 {
					return fmt.Errorf("%s seed=%d: op %d applied %d times, want exactly once\n%s",
						s.name, seed, opid, n, r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSoakBoundedNeverHangs: 500 seeds of adversarial scheduling over a
// budgeted Bounded 1sWRN with deliberately illegal reuse mixed in; every
// process must finish with a value or ErrExhausted — a hang would show up
// as anything else in the status vector.
func TestSoakBoundedNeverHangs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const k = 4
	err := par.ForEach(500, 0, func(sd int) error {
		seed := int64(sd)
		r := chaos.NewReport(seed)
		objects := map[string]sim.Object{
			"W": chaos.NewBounded(wrn.NewOneShot(k), 6),
		}
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				// Processes deliberately collide on index i%2 — reuse is
				// illegal and must degrade, not hang.
				for j := 0; j < 4; j++ {
					if v := ctx.Invoke("W", "WRN", (i+j)%2, i*10+j); chaos.Exhausted(v) {
						return v
					}
				}
				return "done"
			}
		}
		res, err := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			Scheduler:    chaos.Instrument(chaos.NewAdaptive(seed, r), r),
			Seed:         seed,
			MaxSteps:     1 << 18,
			VerifyReplay: true,
		})
		if err != nil {
			return fmt.Errorf("seed=%d: %w", seed, err)
		}
		for i, st := range res.Status {
			if st != sim.StatusDone {
				return fmt.Errorf("seed=%d: process %d ended %v — Bounded must never hang", seed, i, st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSoakAlg6WideSweep: Algorithm 6 across a grid of (n, k) with 100
// seeds each.
func TestSoakAlg6WideSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, k := range []int{3, 4, 5, 6} {
		for _, n := range []int{k, 2 * k, 3*k - 1, 4 * k} {
			k, n := k, n
			task := tasks.SetConsensus{K: setconsensus.Guarantee(n, k)}
			err := par.ForEach(100, 0, func(sd int) error {
				seed := int64(sd)
				objects := map[string]sim.Object{}
				a := setconsensus.NewAlg6(objects, "G", n, k)
				inputs := map[int]sim.Value{}
				progs := make([]sim.Program, n)
				for i := 0; i < n; i++ {
					inputs[i] = i
					progs[i] = a.Program(i, i)
				}
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(seed),
				})
				if err != nil {
					return fmt.Errorf("n=%d k=%d seed=%d: %w", n, k, seed, err)
				}
				o := tasks.OutcomeFromResult(res, inputs)
				if err := task.Check(o); err != nil {
					return fmt.Errorf("n=%d k=%d seed=%d: %w", n, k, seed, err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
