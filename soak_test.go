package detobj_test

// Soak campaigns: high-volume randomized validation of the paper's
// algorithms, skipped under -short. The default `go test ./...` runs them;
// CI-style quick runs use `go test -short ./...`.

import (
	"fmt"
	"testing"

	"detobj/internal/linearize"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

// TestSoakAlg5Linearizability: 1500 schedules per k across k = 2..6, each
// history checked.
func TestSoakAlg5Linearizability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for k := 2; k <= 6; k++ {
		spec := wrn.Spec(k)
		for seed := int64(0); seed < 1500; seed++ {
			objects := map[string]sim.Object{}
			impl := wrn.NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(seed),
				Seed:      seed * 7,
				MaxSteps:  1 << 18,
			})
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if !linearize.Check(spec, linearize.Ops(res.Trace, impl.Name())).OK {
				t.Fatalf("k=%d seed=%d: not linearizable", k, seed)
			}
		}
	}
}

// TestSoakAlg3Campaign: 400 runs of Algorithm 3 over rotating participant
// sets and both crash-free and crashing adversaries.
func TestSoakAlg3Campaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const k, m = 3, 32
	family := setconsensus.CoveringFamily(k)
	task := tasks.SetConsensus{K: k - 1}
	for trial := 0; trial < 400; trial++ {
		ids := []int{(trial * 3) % m, (trial*3 + 11) % m, (trial*3 + 19) % m}
		objects := map[string]sim.Object{}
		a, ones := setconsensus.NewAlg3(objects, "A", k, m, family)
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, k)
		for p, id := range ids {
			v := fmt.Sprintf("v%d", id)
			inputs[p] = v
			progs[p] = a.Program(id, v)
		}
		var sched sim.Scheduler = sim.NewRandom(int64(trial))
		if trial%4 == 3 {
			sched = sim.NewCrashing(sim.NewRandom(int64(trial)), trial%k)
		}
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  progs,
			Scheduler: sched,
			MaxSteps:  1 << 20,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for l, one := range ones {
			for i := 0; i < k; i++ {
				if one.Invocations(i) > 1 {
					t.Fatalf("trial %d: instance %d index %d used twice", trial, l, i)
				}
			}
		}
	}
}

// TestSoakAlg6WideSweep: Algorithm 6 across a grid of (n, k) with 100
// seeds each.
func TestSoakAlg6WideSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, k := range []int{3, 4, 5, 6} {
		for _, n := range []int{k, 2 * k, 3*k - 1, 4 * k} {
			task := tasks.SetConsensus{K: setconsensus.Guarantee(n, k)}
			for seed := int64(0); seed < 100; seed++ {
				objects := map[string]sim.Object{}
				a := setconsensus.NewAlg6(objects, "G", n, k)
				inputs := map[int]sim.Value{}
				progs := make([]sim.Program, n)
				for i := 0; i < n; i++ {
					inputs[i] = i
					progs[i] = a.Program(i, i)
				}
				res, err := sim.Run(sim.Config{
					Objects:   objects,
					Programs:  progs,
					Scheduler: sim.NewRandom(seed),
				})
				if err != nil {
					t.Fatalf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
				o := tasks.OutcomeFromResult(res, inputs)
				if err := task.Check(o); err != nil {
					t.Fatalf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
			}
		}
	}
}
