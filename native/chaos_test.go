package native

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// scriptInjector injects a scripted fault at the nth visit of a site by
// a given id, once; every other visit passes clean.
type scriptInjector struct {
	mu     sync.Mutex
	site   string
	id     int
	fault  Fault
	fired  bool
	visits map[string]int
}

func newScriptInjector(site string, id int, fault Fault) *scriptInjector {
	return &scriptInjector{site: site, id: id, fault: fault, visits: make(map[string]int)}
}

func (s *scriptInjector) At(site string, id int) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.visits[site]++
	if !s.fired && site == s.site && id == s.id {
		s.fired = true
		return s.fault
	}
	return FaultNone
}

// abortSites are the election chaos points at which a participant can
// crash, ordered from "before any shared write" to "deepest partial
// state" (counter won, one-shot write never issued).
var abortSites = []string{
	"election.propose",
	"election.rename.update",
	"election.rename.scan",
	"election.round",
	"election.rlx.won",
}

// TestElectionAbortMidPropose kills one participant goroutine mid-
// Propose at every chaos point in turn and asserts the surviving
// participants still satisfy the election safety properties: every
// decision is some participant's proposal, and at most k−1 distinct
// values are decided.
func TestElectionAbortMidPropose(t *testing.T) {
	const k, m = 3, 16
	ids := []int{2, 9, 14}
	for _, site := range abortSites {
		for round := 0; round < 100; round++ {
			victim := ids[round%len(ids)]
			e := NewElection(k, m)
			inj := newScriptInjector(site, victim, FaultAbort)
			e.SetInjector(inj)
			decisions := make([]any, len(ids))
			errs := make([]error, len(ids))
			var wg sync.WaitGroup
			for p, id := range ids {
				p, id := p, id
				wg.Add(1)
				go func() {
					defer wg.Done()
					decisions[p], errs[p] = e.Propose(id, 1000+id)
				}()
			}
			wg.Wait()
			proposed := map[any]bool{}
			for _, id := range ids {
				proposed[1000+id] = true
			}
			distinct := map[any]bool{}
			aborted := 0
			for p, err := range errs {
				if err != nil {
					if !errors.Is(err, ErrAborted) {
						t.Fatalf("site %s round %d: participant %d failed with %v, want ErrAborted", site, round, p, err)
					}
					aborted++
					continue
				}
				if !proposed[decisions[p]] {
					t.Fatalf("site %s round %d: participant %d decided unproposed %v", site, round, p, decisions[p])
				}
				distinct[decisions[p]] = true
			}
			if aborted != 1 {
				t.Fatalf("site %s round %d: %d aborts, want exactly 1", site, round, aborted)
			}
			if len(distinct) > k-1 {
				t.Fatalf("site %s round %d: %d distinct decisions among survivors, bound %d", site, round, len(distinct), k-1)
			}
		}
	}
}

// TestSetConsensusAbortMidPropose crashes one participant inside the
// one-shot WRN write path; the survivors must stay within the agreement
// guarantee and decide only proposed values.
func TestSetConsensusAbortMidPropose(t *testing.T) {
	const n, wk = 6, 3
	for round := 0; round < 150; round++ {
		victim := round % n
		s := NewSetConsensus(n, wk)
		s.SetInjector(newScriptInjector("oneshot.enter", victim%wk, FaultAbort))
		decisions := make([]any, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				decisions[id], errs[id] = s.Propose(id, 100+id)
			}()
		}
		wg.Wait()
		distinct := map[any]bool{}
		for id, err := range errs {
			if err != nil {
				if !errors.Is(err, ErrAborted) {
					t.Fatalf("round %d: participant %d failed with %v", round, id, err)
				}
				continue
			}
			v, ok := decisions[id].(int)
			if !ok || v < 100 || v >= 100+n {
				t.Fatalf("round %d: participant %d decided unproposed %v", round, id, decisions[id])
			}
			distinct[v] = true
		}
		if len(distinct) > s.Guarantee() {
			t.Fatalf("round %d: %d distinct decisions, guarantee %d", round, len(distinct), s.Guarantee())
		}
	}
}

// TestWRNAbortLeavesObjectClean: the wrn.locked abort point sits before
// the write, so an aborted operation must leave no partial state and
// the index stays usable.
func TestWRNAbortLeavesObjectClean(t *testing.T) {
	w := NewOneShotWRN(3)
	w.SetInjector(newScriptInjector("oneshot.locked", 1, FaultAbort))
	if _, err := w.WRN(1, "v"); !errors.Is(err, ErrAborted) {
		t.Fatalf("first WRN err = %v, want ErrAborted", err)
	}
	got, err := w.WRN(1, "v2")
	if err != nil || !IsBottom(got) {
		t.Fatalf("retry after abort = %v, %v; want ⊥, nil (abort must not burn the index)", got, err)
	}
}

// TestYieldAndStallPreserveSafety drives the election with constant
// yield/stall injection on every layer; the bounds must hold exactly as
// without chaos.
func TestYieldAndStallPreserveSafety(t *testing.T) {
	everyOther := &cycleInjector{faults: []Fault{FaultYield, FaultNone, FaultStall, FaultNone}}
	const k, m = 4, 32
	ids := []int{5, 11, 23, 29}
	for round := 0; round < 50; round++ {
		e := NewElection(k, m)
		e.SetInjector(everyOther)
		decisions := make([]any, len(ids))
		var wg sync.WaitGroup
		for p, id := range ids {
			p, id := p, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := e.Propose(id, 1000+id)
				if err != nil {
					t.Errorf("round %d id %d: %v", round, id, err)
					return
				}
				decisions[p] = out
			}()
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		proposed := map[any]bool{}
		for _, id := range ids {
			proposed[1000+id] = true
		}
		distinct := map[any]bool{}
		for p, d := range decisions {
			if !proposed[d] {
				t.Fatalf("round %d: participant %d decided unproposed %v", round, p, d)
			}
			distinct[d] = true
		}
		if len(distinct) > k-1 {
			t.Fatalf("round %d: %d distinct decisions, bound %d", round, len(distinct), k-1)
		}
	}
}

// cycleInjector cycles through a fixed fault sequence regardless of
// site, exercising yields and stalls everywhere.
type cycleInjector struct {
	mu     sync.Mutex
	n      int
	faults []Fault
}

func (c *cycleInjector) At(string, int) Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.faults[c.n%len(c.faults)]
	c.n++
	return f
}

func TestBoundedDoRetriesAborts(t *testing.T) {
	calls := 0
	v, err := BoundedDo(context.Background(), Budget{Attempts: 3, Backoff: 2}, func() (any, error) {
		calls++
		if calls < 3 {
			return nil, ErrAborted
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("BoundedDo = %v, %v; want ok, nil", v, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestBoundedDoExhaustsAttempts(t *testing.T) {
	_, err := BoundedDo(context.Background(), Budget{Attempts: 2}, func() (any, error) {
		return nil, ErrAborted
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestBoundedDoMapsIndexUsed(t *testing.T) {
	w := NewOneShotWRN(2)
	if _, err := w.WRN(0, "v"); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	b := BoundedOneShotWRN{W: w, B: Budget{Attempts: 3}}
	_, err := b.WRN(context.Background(), 0, "again")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("reuse err = %v, want ErrExhausted", err)
	}
}

func TestBoundedDoRespectsDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BoundedDo(ctx, Budget{Attempts: 5}, func() (any, error) {
		t.Error("op ran under a dead context")
		return nil, nil
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestBoundedDoPassesOtherErrors(t *testing.T) {
	w := NewWRN(2)
	b := BoundedWRN{W: w, B: Budget{Attempts: 2}}
	if _, err := b.WRN(context.Background(), 9, "v"); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("err = %v, want ErrBadIndex verbatim (no spurious exhaustion)", err)
	}
	got, err := b.WRN(context.Background(), 0, "v")
	if err != nil || !IsBottom(got) {
		t.Fatalf("clean bounded WRN = %v, %v", got, err)
	}
}

// repeatInjector aborts the first `left` visits of (site, id); every
// other visit passes clean. It models a process that crashes at the
// same point repeatedly before its restart finally gets through.
type repeatInjector struct {
	mu   sync.Mutex
	site string
	id   int
	left int
}

func (r *repeatInjector) At(site string, id int) Fault {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.left > 0 && site == r.site && id == r.id {
		r.left--
		return FaultAbort
	}
	return FaultNone
}

// TestElectionCrashRestartReentry is the native substrate's
// crash-restart scenario: an injected abort unwinds the participant's
// goroutine mid-Propose — every local variable dies, exactly the
// amnesiac crash of the simulator's FaultCrash — and a later re-entry
// is the restart, a fresh invocation with no memory of the first
// attempt running over whatever shared state the dead attempt already
// published. The election burns a proposer's identity durably before
// any chaos point, so a same-identity restart must be refused with the
// typed ErrIndexUsed (deterministically, never a hang) at every crash
// site; at the doorway site — crash after the identity burn but before
// any shared protocol write — a restart under a fresh identity must
// recover completely and decide. Survivors' safety bounds hold
// throughout. Run under -race, this also checks the re-entry path for
// data races between a restarted participant and the live ones.
func TestElectionCrashRestartReentry(t *testing.T) {
	const k, m = 3, 16
	ids := []int{2, 9, 14}
	const freshID = 5 // the restarted victim's second incarnation identity
	for _, site := range abortSites {
		for round := 0; round < 40; round++ {
			victim := ids[round%len(ids)]
			e := NewElection(k, m)
			e.SetInjector(&repeatInjector{site: site, id: victim, left: 1})
			decisions := make([]any, len(ids))
			errs := make([]error, len(ids))
			var wg sync.WaitGroup
			for p, id := range ids {
				p, id := p, id
				wg.Add(1)
				go func() {
					defer wg.Done()
					b := BoundedElection{E: e, B: Budget{Attempts: 2, Backoff: 1}}
					decisions[p], errs[p] = b.Propose(context.Background(), id, 1000+id)
				}()
			}
			wg.Wait()
			proposed := map[any]bool{}
			for _, id := range ids {
				proposed[1000+id] = true
			}
			proposed[1000+freshID] = true
			distinct := map[any]bool{}
			for p, err := range errs {
				switch {
				case err == nil:
					if !proposed[decisions[p]] {
						t.Fatalf("site %s round %d: participant %d decided unproposed %v",
							site, round, p, decisions[p])
					}
					distinct[decisions[p]] = true
				case errors.Is(err, ErrExhausted):
					if ids[p] != victim {
						t.Fatalf("site %s round %d: untouched participant %d exhausted: %v",
							site, round, p, err)
					}
				default:
					t.Fatalf("site %s round %d: participant %d got %v, want nil or ErrExhausted",
						site, round, p, err)
				}
			}
			// Restart under the same identity: refused deterministically.
			if _, err := e.Propose(victim, 1000+victim); !errors.Is(err, ErrIndexUsed) {
				t.Fatalf("site %s round %d: same-identity restart got %v, want ErrIndexUsed",
					site, round, err)
			}
			if site == "election.propose" {
				// The dead attempt burned its identity but wrote nothing
				// else; a fresh-identity restart joins over pristine shared
				// state and must recover completely.
				out, err := e.Propose(freshID, 1000+freshID)
				if err != nil {
					t.Fatalf("round %d: fresh-identity restart failed at the doorway: %v", round, err)
				}
				if !proposed[out] {
					t.Fatalf("round %d: fresh-identity restart decided unproposed %v", round, out)
				}
				distinct[out] = true
			}
			if len(distinct) > k-1 {
				t.Fatalf("site %s round %d: %d distinct decisions, bound %d",
					site, round, len(distinct), k-1)
			}
		}
	}
}

// TestBoundedElectionUnderAbort: the crashed participant degrades to
// ErrExhausted (its identity is burned), everyone else decides within
// the bound — never a hang, never a spurious error.
func TestBoundedElectionUnderAbort(t *testing.T) {
	const k, m = 3, 16
	ids := []int{2, 9, 14}
	for round := 0; round < 60; round++ {
		victim := ids[round%len(ids)]
		e := NewElection(k, m)
		e.SetInjector(newScriptInjector("election.rename.scan", victim, FaultAbort))
		decisions := make([]any, len(ids))
		errs := make([]error, len(ids))
		var wg sync.WaitGroup
		for p, id := range ids {
			p, id := p, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := BoundedElection{E: e, B: Budget{Attempts: 2, Backoff: 1}}
				decisions[p], errs[p] = b.Propose(context.Background(), id, 1000+id)
			}()
		}
		wg.Wait()
		exhausted := 0
		distinct := map[any]bool{}
		for p, err := range errs {
			switch {
			case err == nil:
				distinct[decisions[p]] = true
			case errors.Is(err, ErrExhausted):
				exhausted++
			default:
				t.Fatalf("round %d: participant %d got %v, want nil or ErrExhausted", round, p, err)
			}
		}
		if exhausted != 1 {
			t.Fatalf("round %d: %d exhausted participants, want exactly the victim", round, exhausted)
		}
		if len(distinct) > k-1 {
			t.Fatalf("round %d: %d distinct decisions, bound %d", round, len(distinct), k-1)
		}
	}
}
