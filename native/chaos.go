package native

// Chaos points: injectable yield/stall/abort hooks threaded through the
// hot paths of every native object (WRN cells, the snapshot, renaming,
// the election protocol). In production the injector is nil and every
// point compiles down to a nil check; under test, a seeded injector
// (internal/chaos.NewInjector) perturbs scheduling and kills operations
// mid-flight so the safety properties can be exercised under adversity
// that plain goroutine interleaving rarely produces.
//
// A point is identified by a stable site name (e.g. "election.rename.update")
// plus the participant id, so injectors can target a specific layer of a
// specific process. The *decisions* of a seeded injector are a pure
// function of (seed, site, visit count) and therefore reproducible even
// though goroutine interleaving is not.

import (
	"errors"
	"fmt"
	"runtime"
)

// Fault is the action an Injector orders at a chaos point.
type Fault int

const (
	// FaultNone does nothing; the operation proceeds undisturbed.
	FaultNone Fault = iota
	// FaultYield yields the processor once, perturbing the interleaving.
	FaultYield
	// FaultStall parks the goroutine in a bounded cooperative-yield loop,
	// modelling a process that is starved for a window but not dead.
	FaultStall
	// FaultAbort kills the operation: it unwinds immediately with
	// ErrAborted, leaving whatever shared state it already wrote visible
	// to every other participant — the crash-during-operation adversary.
	FaultAbort
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultYield:
		return "yield"
	case FaultStall:
		return "stall"
	case FaultAbort:
		return "abort"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Injector decides what happens at each chaos point. Implementations
// must be safe for concurrent use; they are called from every
// participant goroutine.
type Injector interface {
	// At is consulted once per visit of a chaos point. site names the
	// code location, id the participant (or index) passing through it.
	At(site string, id int) Fault
}

// ErrAborted reports that a chaos point killed the operation mid-flight.
// Shared state already written by the operation remains visible — the
// abort models a process crash, not a rollback.
var ErrAborted = errors.New("native: operation aborted at a chaos point")

// stallIters bounds a FaultStall: long enough to upset timing-dependent
// assumptions, short enough to never look like a hang.
const stallIters = 256

// chaosPoint consults the injector (nil injectors are free) and carries
// out the ordered fault. FaultAbort surfaces as a non-nil error the
// caller must propagate without cleaning up shared state.
func chaosPoint(inj Injector, site string, id int) error {
	if inj == nil {
		return nil
	}
	switch inj.At(site, id) {
	case FaultYield:
		runtime.Gosched()
	case FaultStall:
		for i := 0; i < stallIters; i++ {
			runtime.Gosched()
		}
	case FaultAbort:
		return fmt.Errorf("%w: %s (participant %d)", ErrAborted, site, id)
	}
	return nil
}
