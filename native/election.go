package native

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file carries the paper's Algorithm 3 into real concurrent Go: a
// goroutine-safe coordinator-election protocol for at most K participants
// drawn from a name space of M node identities. It composes, natively,
// every layer the simulator verified: an atomic snapshot (mutex-guarded),
// wait-free rank renaming into {0..2K−2}, the covering family of index
// mappings, relaxed WRN wrappers (atomic flag counters), and one-shot
// WRN_K instances.

// snapshot is a mutex-guarded atomic snapshot.
type snapshot struct {
	mu    sync.Mutex
	cells []any
}

func newSnapshot(n int) *snapshot {
	return &snapshot{cells: make([]any, n)}
}

func (s *snapshot) update(i int, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cells[i] = v
}

func (s *snapshot) scan() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]any, len(s.cells))
	copy(out, s.cells)
	return out
}

// renameSlot is a renaming announcement.
type renameSlot struct {
	id   int
	prop int
}

// rename acquires a name in {0..2K−2} for the participant with original
// id, by snapshot-based rank renaming (at most K concurrent participants).
// An abort at either chaos point models a crash mid-renaming: the
// participant's announcement stays in the snapshot for everyone else to
// see, but it never acquires a name.
func rename(snap *snapshot, inj Injector, id int) (int, error) {
	prop := 1
	for {
		if err := chaosPoint(inj, "election.rename.update", id); err != nil {
			return 0, err
		}
		snap.update(id, renameSlot{id: id, prop: prop})
		if err := chaosPoint(inj, "election.rename.scan", id); err != nil {
			return 0, err
		}
		view := snap.scan()
		conflict := false
		var ids []int
		taken := map[int]bool{}
		for slot, raw := range view {
			if raw == nil {
				continue
			}
			ann := raw.(renameSlot)
			ids = append(ids, ann.id)
			if slot == id {
				continue
			}
			taken[ann.prop] = true
			if ann.prop == prop {
				conflict = true
			}
		}
		if !conflict {
			return prop - 1, nil
		}
		sort.Ints(ids)
		rank := 1
		for _, other := range ids {
			if other < id {
				rank++
			}
		}
		prop = nthFree(taken, rank)
	}
}

func nthFree(taken map[int]bool, r int) int {
	n := 0
	//detlint:allow boundedloop terminates within len(taken)+r iterations: taken holds finitely many keys, so at most len(taken) candidates are skipped before r free ones appear
	for candidate := 1; ; candidate++ {
		if !taken[candidate] {
			n++
			if n == r {
				return candidate
			}
		}
	}
}

// relaxedWRN is Algorithm 4 natively: one atomic flag counter per index
// guarding a one-shot WRN_K instance.
type relaxedWRN struct {
	counters []atomic.Int32
	wrn      *OneShotWRN
}

func newRelaxedWRN(k int) *relaxedWRN {
	return &relaxedWRN{counters: make([]atomic.Int32, k), wrn: NewOneShotWRN(k)}
}

// rlx performs RlxWRN(i, v): only the counter's sole incrementer reaches
// the one-shot object; everyone else gets ⊥. An abort between winning
// the counter and writing the one-shot object is the protocol's worst
// partial state: the index is burned but carries no value — exactly the
// crash the relaxed semantics (⊥ answers) must absorb.
func (r *relaxedWRN) rlx(inj Injector, id, i int, v any) (any, error) {
	if r.counters[i].Add(1) == 1 {
		if err := chaosPoint(inj, "election.rlx.won", id); err != nil {
			return nil, err
		}
		return r.wrn.WRN(i, v)
	}
	return Bottom, nil
}

// Election is the paper's Algorithm 3 for real goroutines: at most K
// participants, drawn from node identities {0..M−1}, each propose a value
// and decide at most K−1 distinct values (with identity proposals: at
// most K−1 coordinators).
type Election struct {
	k, m int
	//detlint:allow sharedstate installed via SetInjector before Propose races (documented contract); reads see nil or the fully built injector
	inj       Injector
	snap      *snapshot
	family    [][]int // covering family: one mapping per K-subset of {0..2K−2}
	instances []*relaxedWRN
	proposed  []atomic.Bool
}

// NewElection returns a protocol instance for at most k concurrent
// participants from a name space of m identities; k must be at least 2
// and m at least k.
func NewElection(k, m int) *Election {
	if k < 2 || m < k {
		panic(fmt.Sprintf("native: NewElection(%d,%d), need k >= 2 and m >= k", k, m))
	}
	e := &Election{
		k:        k,
		m:        m,
		snap:     newSnapshot(m),
		family:   coveringFamily(k),
		proposed: make([]atomic.Bool, m),
	}
	e.instances = make([]*relaxedWRN, len(e.family))
	for l := range e.instances {
		e.instances[l] = newRelaxedWRN(k)
	}
	return e
}

// K returns the participant bound; at most K−1 distinct decisions result.
func (e *Election) K() int { return e.k }

// SetInjector installs a chaos injector on the protocol and every layer
// beneath it — renaming, the relaxed wrappers and the one-shot WRN
// instances (nil removes it). Call before Propose races.
func (e *Election) SetInjector(inj Injector) {
	e.inj = inj
	for _, r := range e.instances {
		r.wrn.SetInjector(inj)
	}
}

// Propose runs Algorithm 3 for the node with identity id and proposal v.
// Each identity may propose at most once per instance.
func (e *Election) Propose(id int, v any) (any, error) {
	if id < 0 || id >= e.m {
		return nil, fmt.Errorf("%w: identity %d outside [0,%d)", ErrBadIndex, id, e.m)
	}
	if v == nil || IsBottom(v) {
		return nil, ErrBadValue
	}
	if e.proposed[id].Swap(true) {
		//detlint:allow hangsemantics documented deviation (see package doc): outside the simulator a hang is just a deadlock, so re-proposal surfaces as ErrIndexUsed
		return nil, fmt.Errorf("%w: identity %d already proposed", ErrIndexUsed, id)
	}
	// An abort here crashes the participant after its identity is burned
	// but before it touches any shared protocol state.
	if err := chaosPoint(e.inj, "election.propose", id); err != nil {
		return nil, err
	}
	name, err := rename(e.snap, e.inj, id)
	if err != nil {
		return nil, err
	}
	for l, mapping := range e.family {
		if err := chaosPoint(e.inj, "election.round", id); err != nil {
			return nil, err
		}
		t, err := e.instances[l].rlx(e.inj, id, mapping[name], v)
		if err != nil {
			return nil, err
		}
		if !IsBottom(t) {
			return t, nil
		}
	}
	return v, nil
}

// coveringFamily builds one mapping {0..2k−2}→{0..k−1} per k-subset,
// sending the subset's members to their ranks and everything else to 0.
func coveringFamily(k int) [][]int {
	var family [][]int
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			f := make([]int, 2*k-1)
			for rank, j := range idx {
				f[j] = rank
			}
			family = append(family, f)
			return
		}
		for v := start; v <= (2*k-1)-(k-pos); v++ {
			idx[pos] = v
			rec(v+1, pos+1)
		}
	}
	rec(0, 0)
	return family
}
