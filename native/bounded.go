package native

// Bounded wrappers: graceful degradation for the model's
// hang-on-exhaustion semantics. In the paper an exhausted or illegal
// operation hangs the caller undetectably; a real service cannot afford
// an undetectable hang, so the Bounded layer converts every way an
// operation can fail to make progress — a chaos abort, a starved
// goroutine, a burned one-shot index, a context deadline — into one
// typed, checkable error: ErrExhausted. The wrappers never hang and
// never invent a new failure mode: an operation either returns its
// normal result, a validation error (ErrBadIndex / ErrBadValue), or
// ErrExhausted.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
)

// ErrExhausted reports that a bounded operation ran out of budget —
// retry attempts, context deadline, or the underlying object's one-shot
// capacity. It is the native face of the model's hang-on-exhaustion:
// where the simulator parks the caller forever, the Bounded wrappers
// return this error instead. This sentinel IS the documented
// hang-vs-error boundary (see DESIGN.md); the hangsemantics rule exempts
// package native for exactly this reason, so no allow is needed here.
var ErrExhausted = errors.New("native: operation budget exhausted")

// Budget bounds one native operation.
type Budget struct {
	// Attempts is the maximum number of tries of the underlying
	// operation; 0 means 1 (no retry).
	Attempts int
	// Backoff is the number of cooperative yields between the first and
	// second attempt; it doubles after every retry. 0 means no backoff.
	Backoff int
}

// tries returns the attempt bound with the zero-value default applied.
func (b Budget) tries() int {
	if b.Attempts <= 0 {
		return 1
	}
	return b.Attempts
}

// retryable reports whether err is transient: worth retrying under the
// remaining budget. Only chaos aborts are — a crashed attempt may have
// left no decision, and re-running the operation is the recovery path.
func retryable(err error) bool { return errors.Is(err, ErrAborted) }

// exhaustion reports whether err means the object itself has no
// capacity left (a bounded-use condition retries cannot cure).
func exhaustion(err error) bool {
	//detlint:allow hangsemantics classification at the graceful-degradation boundary: the documented ErrIndexUsed deviation is folded into the typed exhaustion error here
	return errors.Is(err, ErrIndexUsed)
}

// BoundedDo runs op under the budget and the context's deadline. It
// returns op's result on success; ErrExhausted (wrapping the cause) when
// the attempt budget is spent, the context is done, or the object
// reports a bounded-use condition; and any other error verbatim.
//
// Each attempt runs in its own goroutine so a stalled attempt cannot
// outlive the deadline; an attempt that loses the race against the
// context may still take effect afterwards (an abandoned crash-like
// attempt, consistent with the model's crashed processes whose writes
// remain visible).
func BoundedDo(ctx context.Context, b Budget, op func() (any, error)) (any, error) {
	type outcome struct {
		v   any
		err error
	}
	backoff := b.Backoff
	var last error
	for attempt := 0; attempt < b.tries(); attempt++ {
		if err := ctx.Err(); err != nil {
			//detlint:allow hangsemantics graceful-degradation boundary: deadline expiry surfaces as the typed exhaustion error instead of the model's hang
			return nil, fmt.Errorf("%w: %v", ErrExhausted, err)
		}
		ch := make(chan outcome, 1)
		go func() {
			v, err := op()
			ch <- outcome{v, err}
		}()
		select {
		case out := <-ch:
			switch {
			case out.err == nil:
				return out.v, nil
			case exhaustion(out.err):
				//detlint:allow hangsemantics graceful-degradation boundary: the one-shot object's exhaustion maps to the typed error instead of the model's hang
				return nil, fmt.Errorf("%w: %v", ErrExhausted, out.err)
			case retryable(out.err):
				last = out.err
			default:
				return nil, out.err
			}
		case <-ctx.Done():
			//detlint:allow hangsemantics graceful-degradation boundary: deadline expiry surfaces as the typed exhaustion error instead of the model's hang
			return nil, fmt.Errorf("%w: %v", ErrExhausted, ctx.Err())
		}
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		backoff *= 2
	}
	//detlint:allow hangsemantics graceful-degradation boundary: a spent retry budget surfaces as the typed exhaustion error instead of the model's hang
	return nil, fmt.Errorf("%w: %d attempt(s) failed, last: %v", ErrExhausted, b.tries(), last)
}

// BoundedWRN is a WRN with bounded-wait operations.
type BoundedWRN struct {
	W *WRN
	B Budget
}

// WRN is the write-and-read-next operation under the budget.
func (b BoundedWRN) WRN(ctx context.Context, i int, v any) (any, error) {
	return BoundedDo(ctx, b.B, func() (any, error) { return b.W.WRN(i, v) })
}

// BoundedOneShotWRN is a OneShotWRN with bounded-wait operations; index
// reuse surfaces as ErrExhausted rather than the model's hang.
type BoundedOneShotWRN struct {
	W *OneShotWRN
	B Budget
}

// WRN is the one-shot write-and-read-next operation under the budget.
func (b BoundedOneShotWRN) WRN(ctx context.Context, i int, v any) (any, error) {
	return BoundedDo(ctx, b.B, func() (any, error) { return b.W.WRN(i, v) })
}

// BoundedSetConsensus is a SetConsensus with bounded-wait Propose.
type BoundedSetConsensus struct {
	S *SetConsensus
	B Budget
}

// Propose submits id's value under the budget.
func (b BoundedSetConsensus) Propose(ctx context.Context, id int, v any) (any, error) {
	return BoundedDo(ctx, b.B, func() (any, error) { return b.S.Propose(id, v) })
}

// BoundedElection is an Election with bounded-wait Propose. A retried
// attempt whose predecessor crashed after burning the identity reports
// ErrExhausted — the participant is gone as far as the protocol is
// concerned, and the wrapper says so instead of hanging.
type BoundedElection struct {
	E *Election
	B Budget
}

// Propose runs Algorithm 3 for identity id under the budget.
func (b BoundedElection) Propose(ctx context.Context, id int, v any) (any, error) {
	return BoundedDo(ctx, b.B, func() (any, error) { return b.E.Propose(id, v) })
}
