package native

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestElectionConcurrent: k real goroutines with identities from a large
// space decide at most k−1 distinct values, every value some
// participant's proposal.
func TestElectionConcurrent(t *testing.T) {
	cases := []struct {
		k, m int
		ids  []int
	}{
		{3, 16, []int{2, 9, 14}},
		{3, 64, []int{63, 0, 31}},
		{4, 32, []int{5, 11, 23, 29}},
	}
	for _, c := range cases {
		for round := 0; round < 150; round++ {
			e := NewElection(c.k, c.m)
			if e.K() != c.k {
				t.Fatalf("K = %d", e.K())
			}
			decisions := make([]any, len(c.ids))
			var wg sync.WaitGroup
			for p, id := range c.ids {
				p, id := p, id
				wg.Add(1)
				go func() {
					defer wg.Done()
					out, err := e.Propose(id, 1000+id)
					if err != nil {
						t.Errorf("k=%d id=%d: %v", c.k, id, err)
						return
					}
					decisions[p] = out
				}()
			}
			wg.Wait()
			proposed := map[any]bool{}
			for _, id := range c.ids {
				proposed[1000+id] = true
			}
			distinct := map[any]bool{}
			for p, d := range decisions {
				if !proposed[d] {
					t.Fatalf("k=%d round=%d: participant %d decided unproposed %v", c.k, round, p, d)
				}
				distinct[d] = true
			}
			if len(distinct) > c.k-1 {
				t.Fatalf("k=%d round=%d: %d distinct decisions, bound %d", c.k, round, len(distinct), c.k-1)
			}
		}
	}
}

// TestElectionFewerParticipants: fewer than k participants still decide
// valid values.
func TestElectionFewerParticipants(t *testing.T) {
	e := NewElection(3, 16)
	out, err := e.Propose(7, "solo")
	if err != nil || out != "solo" {
		t.Fatalf("solo propose = %v, %v", out, err)
	}
}

// TestElectionValidation: misuse is reported as errors, not hangs.
func TestElectionValidation(t *testing.T) {
	e := NewElection(3, 16)
	if _, err := e.Propose(99, "v"); !errors.Is(err, ErrBadIndex) {
		t.Errorf("bad identity err = %v", err)
	}
	if _, err := e.Propose(3, nil); !errors.Is(err, ErrBadValue) {
		t.Errorf("nil value err = %v", err)
	}
	if _, err := e.Propose(3, "a"); err != nil {
		t.Fatalf("first propose: %v", err)
	}
	if _, err := e.Propose(3, "b"); !errors.Is(err, ErrIndexUsed) {
		t.Errorf("double propose err = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewElection(1, 5) did not panic")
		}
	}()
	NewElection(1, 5)
}

// TestCoveringFamilyNative: the native family covers every k-subset.
func TestCoveringFamilyNative(t *testing.T) {
	for k := 2; k <= 5; k++ {
		family := coveringFamily(k)
		// For each k-subset of {0..2k-2}, some mapping is onto {0..k-1}.
		var subsets func(start int, cur []int)
		ok := true
		idx := []int{}
		subsets = func(start int, cur []int) {
			if len(cur) == k {
				found := false
				for _, f := range family {
					seen := make([]bool, k)
					for _, j := range cur {
						seen[f[j]] = true
					}
					all := true
					for _, s := range seen {
						all = all && s
					}
					if all {
						found = true
						break
					}
				}
				if !found {
					ok = false
				}
				return
			}
			for v := start; v <= 2*k-2; v++ {
				subsets(v+1, append(cur, v))
			}
		}
		subsets(0, idx)
		if !ok {
			t.Errorf("k=%d: covering family incomplete", k)
		}
	}
}

// TestNativeRenaming: concurrent participants acquire distinct names in
// {0..2k−2}.
func TestNativeRenaming(t *testing.T) {
	const m = 32
	ids := []int{4, 17, 29, 8}
	for round := 0; round < 200; round++ {
		snap := newSnapshot(m)
		names := make([]int, len(ids))
		var wg sync.WaitGroup
		for p, id := range ids {
			p, id := p, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				name, err := rename(snap, nil, id)
				if err != nil {
					t.Errorf("rename(%d): %v", id, err)
					return
				}
				names[p] = name
			}()
		}
		wg.Wait()
		seen := map[int]bool{}
		for p, name := range names {
			if name < 0 || name >= 2*len(ids)-1 {
				t.Fatalf("round %d: participant %d got name %d outside [0,%d)", round, p, name, 2*len(ids)-1)
			}
			if seen[name] {
				t.Fatalf("round %d: duplicate name %d (%v)", round, name, names)
			}
			seen[name] = true
		}
	}
}

// TestRelaxedWRNNative: concurrent same-index racers reach the one-shot
// object at most once.
func TestRelaxedWRNNative(t *testing.T) {
	for round := 0; round < 300; round++ {
		r := newRelaxedWRN(3)
		var wg sync.WaitGroup
		nonBottom := 0
		var mu sync.Mutex
		for p := 0; p < 6; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := r.rlx(nil, p, 0, fmt.Sprintf("p%d", p))
				if err != nil {
					t.Errorf("rlx: %v", err)
					return
				}
				if !IsBottom(out) {
					mu.Lock()
					nonBottom++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		// The single forwarded invocation read cell 1, which is ⊥, so
		// every racer got ⊥ back; the invariant is that no ErrIndexUsed
		// occurred (at most one racer reached the object).
		if nonBottom != 0 {
			t.Fatalf("round %d: %d non-⊥ results on a contended fresh index", round, nonBottom)
		}
	}
}

func BenchmarkNativeElectionRound(b *testing.B) {
	ids := []int{2, 9, 14}
	b.ReportAllocs()
	for iter := 0; iter < b.N; iter++ {
		e := NewElection(3, 16)
		var wg sync.WaitGroup
		for _, id := range ids {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := e.Propose(id, id); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
