// Package native provides production-ready, goroutine-safe
// implementations of the paper's objects for real concurrent Go programs
// — the deployable counterpart of the simulator-backed packages.
//
// The simulator (package detobj and internal/sim) exists to *verify* the
// algorithms under adversarial schedules, exhaustive model checking and
// linearizability analysis; this package carries the verified designs
// into ordinary Go code: a WriteAndReadNext object is a mutex-protected
// cell ring (each operation is a single critical section, hence
// linearizable), and the set-consensus protocols are the paper's
// Algorithms 2 and 6 run by real goroutines.
//
// One deliberate deviation from the paper's model: an illegal operation
// on a one-shot object (reusing an index) cannot "hang the system
// undetectably" in a real program, so it returns ErrIndexUsed instead.
package native

import (
	"errors"
	"fmt"
	"sync"
)

// Bottom is the distinguished ⊥ value held by untouched WRN cells.
var Bottom any = bottom{}

type bottom struct{}

// String implements fmt.Stringer.
func (bottom) String() string { return "⊥" }

// IsBottom reports whether v is the distinguished ⊥ value.
func IsBottom(v any) bool {
	_, ok := v.(bottom)
	return ok
}

// Errors returned by the one-shot objects.
var (
	// ErrIndexUsed reports a second operation on a one-shot index.
	ErrIndexUsed = errors.New("native: one-shot index already used")
	// ErrBadIndex reports an index outside [0, k).
	ErrBadIndex = errors.New("native: index out of range")
	// ErrBadValue reports a ⊥ or nil value.
	ErrBadValue = errors.New("native: value must not be nil or ⊥")
)

// WRN is a goroutine-safe WriteAndReadNext object WRN_k (paper §3,
// Algorithm 1): WRN(i, v) atomically writes v into cell i and returns the
// previous content of cell (i+1) mod k.
type WRN struct {
	mu sync.Mutex
	//detlint:allow sharedstate installed via SetInjector before the object is shared (documented contract); hot-path reads see nil or the fully built injector
	inj   Injector
	cells []any
}

// NewWRN returns a fresh WRN_k object; k must be at least 2.
func NewWRN(k int) *WRN {
	if k < 2 {
		panic(fmt.Sprintf("native: NewWRN(%d), need k >= 2", k))
	}
	cells := make([]any, k)
	for i := range cells {
		cells[i] = Bottom
	}
	return &WRN{cells: cells}
}

// K returns the object's arity.
func (w *WRN) K() int { return len(w.cells) }

// SetInjector installs a chaos injector on the object's hot path (nil
// removes it). Call before sharing the object between goroutines.
func (w *WRN) SetInjector(inj Injector) { w.inj = inj }

// WRN performs the atomic write-and-read-next operation.
func (w *WRN) WRN(i int, v any) (any, error) {
	if i < 0 || i >= len(w.cells) {
		return nil, fmt.Errorf("%w: %d outside [0,%d)", ErrBadIndex, i, len(w.cells))
	}
	if v == nil || IsBottom(v) {
		return nil, ErrBadValue
	}
	if err := chaosPoint(w.inj, "wrn.enter", i); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Inside the critical section, before the write: an abort here leaves
	// the object untouched; a stall here exercises lock contention.
	if err := chaosPoint(w.inj, "wrn.locked", i); err != nil {
		return nil, err
	}
	w.cells[i] = v
	return w.cells[(i+1)%len(w.cells)], nil
}

// OneShotWRN is a goroutine-safe 1sWRN_k: each index is usable at most
// once; reuse returns ErrIndexUsed.
type OneShotWRN struct {
	mu sync.Mutex
	//detlint:allow sharedstate installed via SetInjector before the object is shared (documented contract); hot-path reads see nil or the fully built injector
	inj   Injector
	cells []any
	used  []bool
}

// NewOneShotWRN returns a fresh 1sWRN_k object; k must be at least 2.
func NewOneShotWRN(k int) *OneShotWRN {
	if k < 2 {
		panic(fmt.Sprintf("native: NewOneShotWRN(%d), need k >= 2", k))
	}
	cells := make([]any, k)
	for i := range cells {
		cells[i] = Bottom
	}
	return &OneShotWRN{cells: cells, used: make([]bool, k)}
}

// K returns the object's arity.
func (w *OneShotWRN) K() int { return len(w.cells) }

// SetInjector installs a chaos injector on the object's hot path (nil
// removes it). Call before sharing the object between goroutines.
func (w *OneShotWRN) SetInjector(inj Injector) { w.inj = inj }

// WRN performs the one-shot write-and-read-next operation.
func (w *OneShotWRN) WRN(i int, v any) (any, error) {
	if i < 0 || i >= len(w.cells) {
		return nil, fmt.Errorf("%w: %d outside [0,%d)", ErrBadIndex, i, len(w.cells))
	}
	if v == nil || IsBottom(v) {
		return nil, ErrBadValue
	}
	if err := chaosPoint(w.inj, "oneshot.enter", i); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.used[i] {
		//detlint:allow hangsemantics documented deviation (see package doc): a real goroutine cannot be parked undetectably, so reuse surfaces as ErrIndexUsed instead of the model's hang
		return nil, fmt.Errorf("%w: index %d", ErrIndexUsed, i)
	}
	if err := chaosPoint(w.inj, "oneshot.locked", i); err != nil {
		return nil, err
	}
	w.used[i] = true
	w.cells[i] = v
	return w.cells[(i+1)%len(w.cells)], nil
}

// SetConsensus is the paper's Algorithm 6 for real goroutines: m-set
// consensus for n participants with ids 0..n−1, built from ⌈n/k⌉ one-shot
// WRN_k objects. Each id may propose at most once.
type SetConsensus struct {
	n, k int
	//detlint:allow sharedstate installed via SetInjector before Propose races (documented contract); reads see nil or the fully built injector
	inj       Injector
	instances []*OneShotWRN
}

// NewSetConsensus returns a protocol instance for n participants with
// arity parameter k ≥ 2. Its agreement guarantee is Guarantee().
func NewSetConsensus(n, k int) *SetConsensus {
	if n < 1 || k < 2 {
		panic(fmt.Sprintf("native: NewSetConsensus(%d,%d)", n, k))
	}
	groups := (n + k - 1) / k
	instances := make([]*OneShotWRN, groups)
	for g := range instances {
		instances[g] = NewOneShotWRN(k)
	}
	return &SetConsensus{n: n, k: k, instances: instances}
}

// Guarantee returns the protocol's agreement bound: at most
// ⌊n/k⌋·(k−1) + (n mod k) distinct decisions (§7.1).
func (s *SetConsensus) Guarantee() int {
	return (s.n/s.k)*(s.k-1) + s.n%s.k
}

// SetInjector installs a chaos injector on the protocol and every
// underlying WRN instance (nil removes it). Call before Propose races.
func (s *SetConsensus) SetInjector(inj Injector) {
	s.inj = inj
	for _, w := range s.instances {
		w.SetInjector(inj)
	}
}

// Propose submits participant id's value and returns its decision:
// either its own proposal or that of its ring successor (Algorithm 2
// within the participant's group).
func (s *SetConsensus) Propose(id int, v any) (any, error) {
	if id < 0 || id >= s.n {
		return nil, fmt.Errorf("%w: participant %d outside [0,%d)", ErrBadIndex, id, s.n)
	}
	if err := chaosPoint(s.inj, "setconsensus.propose", id); err != nil {
		return nil, err
	}
	t, err := s.instances[id/s.k].WRN(id%s.k, v)
	if err != nil {
		return nil, err
	}
	if IsBottom(t) {
		return v, nil
	}
	return t, nil
}
