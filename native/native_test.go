package native

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestWRNSequential(t *testing.T) {
	w := NewWRN(3)
	if w.K() != 3 {
		t.Fatalf("K = %d", w.K())
	}
	got, err := w.WRN(0, "a")
	if err != nil || !IsBottom(got) {
		t.Fatalf("WRN(0,a) = %v, %v", got, err)
	}
	got, err = w.WRN(2, "c")
	if err != nil || got != "a" {
		t.Fatalf("WRN(2,c) = %v, %v", got, err)
	}
	got, err = w.WRN(0, "a2")
	if err != nil || !IsBottom(got) {
		t.Fatalf("WRN(0,a2) = %v, %v (cell 1 untouched)", got, err)
	}
}

func TestWRNValidation(t *testing.T) {
	w := NewWRN(3)
	if _, err := w.WRN(7, "v"); !errors.Is(err, ErrBadIndex) {
		t.Errorf("bad index err = %v", err)
	}
	if _, err := w.WRN(0, nil); !errors.Is(err, ErrBadValue) {
		t.Errorf("nil value err = %v", err)
	}
	if _, err := w.WRN(0, Bottom); !errors.Is(err, ErrBadValue) {
		t.Errorf("bottom value err = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewWRN(1) did not panic")
		}
	}()
	NewWRN(1)
}

func TestOneShotReuse(t *testing.T) {
	w := NewOneShotWRN(3)
	if _, err := w.WRN(1, "v"); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if _, err := w.WRN(1, "w"); !errors.Is(err, ErrIndexUsed) {
		t.Fatalf("reuse err = %v", err)
	}
	if w.K() != 3 {
		t.Errorf("K = %d", w.K())
	}
}

func TestBottomIdentity(t *testing.T) {
	if !IsBottom(Bottom) || IsBottom("x") || IsBottom(nil) {
		t.Error("IsBottom misbehaves")
	}
	if fmt.Sprint(Bottom) != "⊥" {
		t.Errorf("Bottom prints as %v", Bottom)
	}
}

// TestSetConsensusConcurrent: real goroutines race through the protocol;
// the decisions must satisfy validity and the guarantee, every time.
func TestSetConsensusConcurrent(t *testing.T) {
	cases := []struct{ n, k int }{{3, 3}, {6, 3}, {12, 3}, {10, 5}, {7, 4}}
	for _, c := range cases {
		for round := 0; round < 200; round++ {
			s := NewSetConsensus(c.n, c.k)
			decisions := make([]any, c.n)
			var wg sync.WaitGroup
			for id := 0; id < c.n; id++ {
				id := id
				wg.Add(1)
				go func() {
					defer wg.Done()
					out, err := s.Propose(id, id*10)
					if err != nil {
						t.Errorf("n=%d k=%d id=%d: %v", c.n, c.k, id, err)
						return
					}
					decisions[id] = out
				}()
			}
			wg.Wait()
			distinct := map[any]bool{}
			proposed := map[any]bool{}
			for id := 0; id < c.n; id++ {
				proposed[id*10] = true
			}
			for id, d := range decisions {
				if !proposed[d] {
					t.Fatalf("n=%d k=%d: participant %d decided unproposed %v", c.n, c.k, id, d)
				}
				distinct[d] = true
			}
			if len(distinct) > s.Guarantee() {
				t.Fatalf("n=%d k=%d round=%d: %d distinct decisions, guarantee %d",
					c.n, c.k, round, len(distinct), s.Guarantee())
			}
		}
	}
}

// TestSetConsensusDoublePropose: a participant proposing twice hits the
// one-shot guard.
func TestSetConsensusDoublePropose(t *testing.T) {
	s := NewSetConsensus(3, 3)
	if _, err := s.Propose(0, "x"); err != nil {
		t.Fatalf("first propose: %v", err)
	}
	if _, err := s.Propose(0, "y"); !errors.Is(err, ErrIndexUsed) {
		t.Fatalf("double propose err = %v", err)
	}
	if _, err := s.Propose(9, "z"); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("bad participant err = %v", err)
	}
}

func TestSetConsensusGuarantee(t *testing.T) {
	if g := NewSetConsensus(12, 3).Guarantee(); g != 8 {
		t.Errorf("Guarantee(12,3) = %d, want 8", g)
	}
	if g := NewSetConsensus(7, 3).Guarantee(); g != 5 {
		t.Errorf("Guarantee(7,3) = %d, want 5", g)
	}
}

// TestWRNConcurrentLinearizable: concurrent WRN operations on distinct
// indices; afterwards the cell contents must equal the last write per
// index and every returned value must be ⊥ or some written value.
func TestWRNConcurrentLinearizable(t *testing.T) {
	const k = 8
	for round := 0; round < 100; round++ {
		w := NewWRN(k)
		results := make([]any, k)
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := w.WRN(i, fmt.Sprintf("v%d", i))
				if err != nil {
					t.Errorf("WRN(%d): %v", i, err)
					return
				}
				results[i] = out
			}()
		}
		wg.Wait()
		bottoms := 0
		for i, out := range results {
			if IsBottom(out) {
				bottoms++
				continue
			}
			if out != fmt.Sprintf("v%d", (i+1)%k) {
				t.Fatalf("round %d: WRN(%d) returned %v", round, i, out)
			}
		}
		if bottoms == 0 {
			t.Fatalf("round %d: nobody read ⊥; the first operation must", round)
		}
	}
}

// TestQuickSetConsensusValidity: random (n,k) configurations keep the
// bound under concurrency.
func TestQuickSetConsensusValidity(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		k := int(rawK%5) + 2
		n := int(rawN%20) + 1
		s := NewSetConsensus(n, k)
		decisions := make([]any, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := s.Propose(id, id)
				if err == nil {
					decisions[id] = out
				}
			}()
		}
		wg.Wait()
		distinct := map[any]bool{}
		for _, d := range decisions {
			if d == nil {
				return false
			}
			distinct[d] = true
		}
		return len(distinct) <= s.Guarantee()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNativeWRN(b *testing.B) {
	w := NewWRN(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := w.WRN(i%8, i+1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkNativeSetConsensusRound(b *testing.B) {
	const n, k = 12, 3
	b.ReportAllocs()
	for iter := 0; iter < b.N; iter++ {
		s := NewSetConsensus(n, k)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Propose(id, id); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
