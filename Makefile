# Development targets for the detobj reproduction.

GO ?= go

.PHONY: all check build vet lint lint-sarif lint-full lint-recovery lint-parallel race test test-short bench bench-smoke experiments fuzz chaos clean

all: build vet lint test

# The full pre-merge gate: static analysis and the race detector in one
# invocation, alongside the build, vet and the test suite.
check: build vet lint race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the determinism & model-integrity analyzer suite (see README
# "Static analysis"; `go run ./cmd/detlint -list-rules` prints the
# catalogue), the v5 persistence/recovery rules included; nonzero exit
# on any unannotated finding. Runs are incremental: an unchanged tree
# replays the cached report from .detlint.cache ("detlint: cache hit");
# use -no-cache to force a fresh run.
lint:
	$(GO) run ./cmd/detlint ./...

# Just the persistence & recovery-safety rules, cache-free — the local
# mirror of CI's recovery-gate job.
lint-recovery:
	$(GO) run ./cmd/detlint -no-cache -rules persistsplit,recoveryreads,journaldiscipline,restartcoverage ./...

# Just the parallel-determinism rules (the par.ForEach slot/merge/sink/
# seed contract), cache-free — the local mirror of CI's parallel-gate
# job.
lint-parallel:
	$(GO) run ./cmd/detlint -no-cache -parallel ./...

# Same suite, also writing a SARIF 2.1.0 log for code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/detlint -sarif detlint.sarif ./...

# The nightly slow path (.github/workflows/nightly.yml): vet plus the
# full suite with the result cache bypassed, so a cache-layer bug cannot
# mask a regression. Run a subset with `go run ./cmd/detlint -rules
# lockorder,decisionflow ./...` — the cache key covers the rule set.
lint-full: vet
	$(GO) run ./cmd/detlint -no-cache -sarif detlint.sarif ./...

# Exercise everything — including the native (real-goroutine) package —
# under the race detector.
race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Run the full benchmark suite and distill it into the next-numbered
# BENCH_N.json via cmd/benchjson, which pairs the .../seq and .../par
# sub-benchmarks of bench_parallel_test.go and reports the parallel
# engines' speedup. The target number is derived from the newest
# committed BENCH_N.json (plus one), so the filename never drifts from
# the tree the way a hardcoded number does. The JSON records
# numcpu/gomaxprocs so committed numbers are honest about the machine
# they were measured on.
BENCH_NEXT = $(shell ls BENCH_*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$$/\1/p' | sort -n | tail -1 | awk '{print $$1+1}')
bench:
	$(GO) test -bench=. -benchmem . | tee bench.out
	$(GO) run ./cmd/benchjson -o BENCH_$(if $(BENCH_NEXT),$(BENCH_NEXT),1).json < bench.out
	rm -f bench.out

# One iteration per benchmark — a CI-sized check that the harness and
# the benchjson pipeline work end to end.
bench-smoke:
	$(GO) test -bench=. -benchtime 1x -benchmem . | $(GO) run ./cmd/benchjson -o -

# Regenerate every experiment table from EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/wrnsim -runs 1000
	$(GO) run ./cmd/hierarchy
	$(GO) run ./cmd/modelcheck
	$(GO) run ./cmd/substrates

# Sweep seeds through the chaos harness on both substrates (see README
# "Robustness & chaos testing"); failures print the reproducing seed.
# The crash-restart soak hammers the recoverable WRN with every restart
# adversary stack and audits the exactly-once journal per seed.
chaos:
	$(GO) run -race ./cmd/chaos -seeds 25
	$(GO) test -race -run 'TestSoakChaosAdversaries|TestSoakBoundedNeverHangs|TestSoakCrashRestartRecoverable' .

# Short fuzzing passes over the property targets.
fuzz:
	$(GO) test -fuzz FuzzWRNAgainstReference -fuzztime 30s ./internal/wrn/
	$(GO) test -fuzz FuzzAlg2Schedules -fuzztime 30s ./internal/wrn/
	$(GO) test -fuzz FuzzCheckAgainstBruteForce -fuzztime 30s ./internal/linearize/

clean:
	$(GO) clean -testcache
	rm -f .detlint.cache detlint.sarif
