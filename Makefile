# Development targets for the detobj reproduction.

GO ?= go

.PHONY: all build vet lint race test test-short bench experiments fuzz chaos clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the determinism & model-integrity analyzer suite (see README
# "Static analysis"); nonzero exit on any unannotated finding.
lint:
	$(GO) run ./cmd/detlint ./...

# Exercise the native (real-goroutine) package and everything else under
# the race detector.
race:
	$(GO) test -race -short ./native/... ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment table from EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/wrnsim -runs 1000
	$(GO) run ./cmd/hierarchy
	$(GO) run ./cmd/modelcheck
	$(GO) run ./cmd/substrates

# Sweep seeds through the chaos harness on both substrates (see README
# "Robustness & chaos testing"); failures print the reproducing seed.
chaos:
	$(GO) run -race ./cmd/chaos -seeds 25
	$(GO) test -race -run 'TestSoakChaosAdversaries|TestSoakBoundedNeverHangs' .

# Short fuzzing passes over the property targets.
fuzz:
	$(GO) test -fuzz FuzzWRNAgainstReference -fuzztime 30s ./internal/wrn/
	$(GO) test -fuzz FuzzAlg2Schedules -fuzztime 30s ./internal/wrn/
	$(GO) test -fuzz FuzzCheckAgainstBruteForce -fuzztime 30s ./internal/linearize/

clean:
	$(GO) clean -testcache
