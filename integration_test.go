package detobj_test

// Cross-package integration tests: tightness of the calculus bounds
// (adversarial object choices force the worst case exactly), and
// whole-stack campaigns mixing every layer of the library.

import (
	"fmt"
	"testing"

	"detobj/internal/core"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

// maxChoice is the adversarial choice source for set-consensus objects:
// it always admits a new value into the decision set (Intn(2) = 1) and
// always returns the newest member (Intn(len) = len−1), so every proposer
// that can diverge does.
type maxChoice struct{}

func (maxChoice) Intn(n int) int { return n - 1 }

// TestTheorem41BoundIsTight: under the adversarial choice source, the
// partition protocol produces EXACTLY MinAgreement(n,m,j) distinct
// decisions — the characterization is an equality, not just an upper
// bound.
func TestTheorem41BoundIsTight(t *testing.T) {
	cases := []struct{ n, m, j int }{
		{5, 3, 2}, {7, 3, 2}, {12, 3, 2}, {9, 4, 2}, {10, 4, 3}, {8, 8, 3},
	}
	for _, c := range cases {
		want := core.MinAgreement(c.n, c.m, c.j)
		objects := map[string]sim.Object{}
		vs := make([]sim.Value, c.n)
		inputs := map[int]sim.Value{}
		for i := range vs {
			vs[i] = i * 100
			inputs[i] = vs[i]
		}
		progs := core.PartitionPrograms(objects, "P", c.m, c.j, vs)
		res, err := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			Choice:       maxChoice{},
			VerifyReplay: true,
		})
		if err != nil {
			t.Fatalf("n=%d m=%d j=%d: %v", c.n, c.m, c.j, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if got := o.DistinctOutputs(); got != want {
			t.Errorf("n=%d m=%d j=%d: %d distinct decisions under the adversary, want exactly %d",
				c.n, c.m, c.j, got, want)
		}
	}
}

// TestConjPowerBoundIsTight: same tightness for the conjunction calculus.
// Consensus cells admit no divergence, so the adversary acts only through
// the set-consensus groups.
func TestConjPowerBoundIsTight(t *testing.T) {
	cases := []struct{ n, consN, m, j int }{
		{6, 2, 8, 2}, {16, 2, 8, 2}, {9, 3, 4, 2}, {7, 3, 100, 2},
	}
	for _, c := range cases {
		want := core.ConjPower(c.n, c.consN, c.m, c.j)
		objects := map[string]sim.Object{}
		vs := make([]sim.Value, c.n)
		inputs := map[int]sim.Value{}
		for i := range vs {
			vs[i] = i * 100
			inputs[i] = vs[i]
		}
		progs := core.ConjPrograms(objects, "C", c.consN, c.m, c.j, vs)
		res, err := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			Choice:       maxChoice{},
			VerifyReplay: true,
		})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if got := o.DistinctOutputs(); got != want {
			t.Errorf("%+v: %d distinct under the adversary, want exactly %d", c, got, want)
		}
	}
}

// TestAlg2BoundIsTightEveryK: for each k, SOME schedule of Algorithm 2
// produces exactly k−1 distinct decisions (the decreasing-index order
// does: each process reads its successor's already-written value, except
// the first).
func TestAlg2BoundIsTightEveryK(t *testing.T) {
	for k := 3; k <= 10; k++ {
		objects := map[string]sim.Object{}
		vs := make([]sim.Value, k)
		inputs := map[int]sim.Value{}
		for i := range vs {
			vs[i] = i * 10
			inputs[i] = vs[i]
		}
		progs := setconsensus.NewAlg2(objects, "W", vs)
		// Schedule k-1, k-2, ..., 0: process i runs after its successor.
		order := make([]int, k)
		for i := range order {
			order[i] = k - 1 - i
		}
		res, err := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			Scheduler:    sim.NewFixed(order...),
			VerifyReplay: true,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if got := o.DistinctOutputs(); got != k-1 {
			t.Errorf("k=%d: decreasing schedule gave %d distinct, want exactly %d", k, got, k-1)
		}
	}
}

// TestWholeStackCampaign: a randomized campaign across the full library —
// Algorithm 3 over relaxed WRN over Algorithm 5's implementation over the
// strong-election object, judged by the task checker — across many seeds
// and participant sets.
func TestWholeStackCampaign(t *testing.T) {
	const k, m = 3, 24
	family := setconsensus.CoveringFamily(k)
	task := tasks.SetConsensus{K: k - 1}
	for trial := 0; trial < 12; trial++ {
		ids := []int{(trial * 5) % m, (trial*5 + 7) % m, (trial*5 + 13) % m}
		objects := map[string]sim.Object{}
		a := setconsensus.NewAlg3Over(objects, "S", k, m, family, func(instName string, k int) wrn.Relaxed {
			impl := wrn.NewImpl(objects, instName, k)
			return wrn.NewRelaxedOver(objects, instName+".cnt", k, impl)
		})
		inputs := map[int]sim.Value{}
		progs := make([]sim.Program, k)
		for p, id := range ids {
			v := fmt.Sprintf("input-%d", id)
			inputs[p] = v
			progs[p] = a.Program(id, v)
		}
		res, err := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			Scheduler:    sim.NewRandom(int64(trial) * 97),
			Seed:         int64(trial),
			MaxSteps:     1 << 21,
			VerifyReplay: true,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.AllDone() {
			t.Fatalf("trial %d: %v", trial, res.Status)
		}
		o := tasks.OutcomeFromResult(res, inputs)
		if err := task.Check(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCalculusMatchesAlgorithmGuarantee: cross-package agreement between
// internal/core's formula and internal/setconsensus's Algorithm 6 bound
// (asserted at the repository level because core stays import-light).
func TestCalculusMatchesAlgorithmGuarantee(t *testing.T) {
	for n := 3; n <= 30; n++ {
		for k := 3; k <= 7; k++ {
			if got, want := core.MinAgreement(n, k, k-1), setconsensus.Guarantee(n, k); got != want {
				t.Errorf("n=%d k=%d: MinAgreement %d vs Guarantee %d", n, k, got, want)
			}
		}
	}
}
