module detobj

go 1.22
