package main

import (
	"strings"
	"testing"
)

func TestRunAllExperiments(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 20, 1, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"E1", "E3", "E4", "E5", "E9", "exhaustive"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("experiments reported failures:\n%s", out)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e1", 10, 1, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(b.String(), "E3") {
		t.Error("e1 selection also ran e3")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e99", 10, 1, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunParallelDeterministic: the result tables must be byte-identical
// for every -parallel value — run r always uses seed+r, and aggregation
// happens in run order.
func TestRunParallelDeterministic(t *testing.T) {
	var want strings.Builder
	if err := run(&want, "all", 15, 7, 1); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		var got strings.Builder
		if err := run(&got, "all", 15, 7, workers); err != nil {
			t.Fatalf("parallel=%d run: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Errorf("parallel=%d output differs from sequential", workers)
		}
	}
}

// TestE1NoViolations parses the E1 table and asserts the violations column
// is all zeros and max-distinct stays within the bound.
func TestE1NoViolations(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e1", 50, 3, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(b.String(), "\n")
	dataRows := 0
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 6 || fields[0] == "k" {
			continue
		}
		dataRows++
		if fields[5] != "0" {
			t.Errorf("violations in row: %s", line)
		}
		if fields[3] > fields[4] {
			t.Errorf("max-distinct exceeds bound: %s", line)
		}
	}
	if dataRows != 6 {
		t.Errorf("parsed %d data rows, want 6 (k = 3..8)", dataRows)
	}
}

func TestPickIDsDistinct(t *testing.T) {
	ids := pickIDs(4, 32)
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= 32 || seen[id] {
			t.Fatalf("bad ids %v", ids)
		}
		seen[id] = true
	}
}
