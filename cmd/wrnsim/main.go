// Command wrnsim runs the paper's WRN-based set-consensus algorithms under
// random and exhaustive schedules and prints the experiment tables E1, E3,
// E4, E5 and E9 (see EXPERIMENTS.md).
//
// Random sweeps split the base seed per run (run r uses seed+r), so the
// result table is identical for every -parallel value; exhaustive rows run
// on modelcheck.ExploreParallel, which is order-identical to Explore.
// wrnsim exits non-zero when any experiment's correctness columns show a
// violation (E1/E3/E9 violations, E3/E4 illegal uses, E5 non-linearizable
// runs), so a failed sweep cannot masquerade as a clean one.
//
// Usage:
//
//	wrnsim [-exp e1|e3|e4|e5|e9|all] [-runs N] [-seed S] [-parallel P]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"detobj/internal/linearize"
	"detobj/internal/modelcheck"
	"detobj/internal/par"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/tasks"
	"detobj/internal/wrn"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1, e3, e4, e5, e9 or all")
	runs := flag.Int("runs", 1000, "random schedules per configuration")
	seed := flag.Int64("seed", 1, "base seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for seed sweeps (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(os.Stdout, *exp, *runs, *seed, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "wrnsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, runs int, seed int64, workers int) error {
	workers = par.Normalize(workers, -1)
	type experiment struct {
		name string
		fn   func(io.Writer, int, int64, int) error
	}
	all := []experiment{
		{"e1", expE1}, {"e3", expE3}, {"e4", expE4}, {"e5", expE5}, {"e9", expE9},
	}
	matched := false
	var failures []string
	for _, e := range all {
		if exp == "all" || exp == e.name {
			matched = true
			if err := e.fn(w, runs, seed, workers); err != nil {
				// Keep printing the remaining tables; report every failed
				// experiment rather than just the first.
				failures = append(failures, fmt.Sprintf("%s: %v", e.name, err))
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "FAIL", f)
		}
		return fmt.Errorf("%d experiment(s) failed", len(failures))
	}
	return nil
}

// expE1: Algorithm 2 solves (k−1)-set consensus for k processes.
func expE1(w io.Writer, runs int, seed int64, workers int) error {
	fmt.Fprintln(w, "E1  Algorithm 2: (k-1)-set consensus for k processes from one 1sWRN_k")
	fmt.Fprintln(w, "k   schedules  mode        max-distinct  bound  violations")
	totalViolations := 0
	for k := 3; k <= 8; k++ {
		task := tasks.SetConsensus{K: k - 1}
		if k <= 6 {
			// Exhaustive: the protocol takes one step per process. The
			// parallel engine visits executions in the canonical order on
			// this goroutine, so the counters need no locking.
			maxDistinct, count, violations := 0, 0, 0
			_, err := modelcheck.ExploreParallel(func() sim.Config {
				objects := map[string]sim.Object{}
				return sim.Config{Objects: objects, Programs: alg2Programs(objects, k)}
			}, 0, workers, func(e modelcheck.Execution) error {
				count++
				o := tasks.OutcomeFromResult(e.Result, alg2Inputs(k))
				if task.Check(o) != nil {
					violations++
				}
				if d := o.DistinctOutputs(); d > maxDistinct {
					maxDistinct = d
				}
				return nil
			})
			if err != nil {
				return err
			}
			totalViolations += violations
			fmt.Fprintf(w, "%-3d %-10d %-11s %-13d %-6d %d\n", k, count, "exhaustive", maxDistinct, k-1, violations)
			continue
		}
		type slot struct {
			distinct  int
			violation bool
		}
		slots := make([]slot, runs)
		err := par.ForEach(runs, workers, func(r int) error {
			objects := map[string]sim.Object{}
			progs := alg2Programs(objects, k)
			res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed + int64(r))})
			if err != nil {
				return err
			}
			o := tasks.OutcomeFromResult(res, alg2Inputs(k))
			slots[r] = slot{distinct: o.DistinctOutputs(), violation: task.Check(o) != nil}
			return nil
		})
		if err != nil {
			return err
		}
		maxDistinct, violations := 0, 0
		for _, s := range slots {
			if s.violation {
				violations++
			}
			if s.distinct > maxDistinct {
				maxDistinct = s.distinct
			}
		}
		totalViolations += violations
		fmt.Fprintf(w, "%-3d %-10d %-11s %-13d %-6d %d\n", k, runs, "random", maxDistinct, k-1, violations)
	}
	fmt.Fprintln(w)
	if totalViolations > 0 {
		return fmt.Errorf("%d set-consensus violations", totalViolations)
	}
	return nil
}

func alg2Programs(objects map[string]sim.Object, k int) []sim.Program {
	vs := make([]sim.Value, k)
	for i := range vs {
		vs[i] = i * 10
	}
	return setconsensus.NewAlg2(objects, "W", vs)
}

func alg2Inputs(k int) map[int]sim.Value {
	inputs := map[int]sim.Value{}
	for i := 0; i < k; i++ {
		inputs[i] = i * 10
	}
	return inputs
}

// expE3: Algorithm 3 with renaming and relaxed WRN instances.
func expE3(w io.Writer, runs int, seed int64, workers int) error {
	fmt.Fprintln(w, "E3  Algorithm 3: (k-1)-set consensus for k participants out of M names")
	fmt.Fprintln(w, "k   M    family      instances  schedules  max-distinct  bound  violations  illegal-uses")
	totalViolations, totalIllegal := 0, 0
	for _, cfg := range []struct{ k, m int }{{3, 16}, {3, 64}, {4, 32}} {
		family := setconsensus.CoveringFamily(cfg.k)
		ids := pickIDs(cfg.k, cfg.m)
		task := tasks.SetConsensus{K: cfg.k - 1}
		type slot struct {
			distinct  int
			violation bool
			illegal   int
		}
		slots := make([]slot, runs)
		err := par.ForEach(runs, workers, func(r int) error {
			objects := map[string]sim.Object{}
			a, ones := setconsensus.NewAlg3(objects, "A", cfg.k, cfg.m, family)
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, cfg.k)
			for p, id := range ids {
				v := 1000 + id
				inputs[p] = v
				progs[p] = a.Program(id, v)
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(seed + int64(r)),
				MaxSteps:  1 << 20,
			})
			if err != nil {
				return err
			}
			o := tasks.OutcomeFromResult(res, inputs)
			s := slot{distinct: o.DistinctOutputs(), violation: task.Check(o) != nil || !res.AllDone()}
			for _, one := range ones {
				for i := 0; i < cfg.k; i++ {
					if one.Invocations(i) > 1 {
						s.illegal++
					}
				}
			}
			slots[r] = s
			return nil
		})
		if err != nil {
			return err
		}
		maxDistinct, violations, illegal := 0, 0, 0
		for _, s := range slots {
			if s.violation {
				violations++
			}
			illegal += s.illegal
			if s.distinct > maxDistinct {
				maxDistinct = s.distinct
			}
		}
		totalViolations += violations
		totalIllegal += illegal
		fmt.Fprintf(w, "%-3d %-4d %-11s %-10d %-10d %-13d %-6d %-11d %d\n",
			cfg.k, cfg.m, "covering", family.Len(), runs, maxDistinct, cfg.k-1, violations, illegal)
	}
	fmt.Fprintln(w)
	if totalViolations > 0 || totalIllegal > 0 {
		return fmt.Errorf("%d violations, %d illegal one-shot uses", totalViolations, totalIllegal)
	}
	return nil
}

func pickIDs(k, m int) []int {
	ids := make([]int, k)
	for i := range ids {
		ids[i] = (i*7 + 3) % m
		for contains(ids[:i], ids[i]) {
			ids[i] = (ids[i] + 1) % m
		}
	}
	return ids
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// expE4: the relaxed WRN wrapper never uses the one-shot object illegally.
func expE4(w io.Writer, runs int, seed int64, workers int) error {
	fmt.Fprintln(w, "E4  Algorithm 4: RlxWRN flag principle (claims 19-21)")
	fmt.Fprintln(w, "k   contenders  schedules  illegal-uses  hangs  sole-access-forwarded")
	totalIllegal := 0
	for _, cfg := range []struct{ k, procs int }{{3, 5}, {4, 6}, {6, 8}} {
		type slot struct {
			illegal, hangs int
			forwarded      bool
		}
		slots := make([]slot, runs)
		err := par.ForEach(runs, workers, func(r int) error {
			objects := map[string]sim.Object{}
			rlx, one := wrn.NewRelaxed(objects, "W", cfg.k)
			progs := make([]sim.Program, cfg.procs)
			for p := 0; p < cfg.procs; p++ {
				p := p
				progs[p] = func(ctx *sim.Ctx) sim.Value {
					// Everyone hammers index 0; one process alone uses index 1.
					if p == 0 {
						return rlx.RlxWRN(ctx, 1, fmt.Sprintf("solo%d", p))
					}
					return rlx.RlxWRN(ctx, 0, fmt.Sprintf("p%d", p))
				}
			}
			res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed + int64(r))})
			if err != nil {
				return err
			}
			var s slot
			for i := 0; i < cfg.k; i++ {
				if one.Invocations(i) > 1 {
					s.illegal++
				}
			}
			for _, st := range res.Status {
				if st == sim.StatusHung {
					s.hangs++
				}
			}
			s.forwarded = one.Invocations(1) == 1
			slots[r] = s
			return nil
		})
		if err != nil {
			return err
		}
		illegal, hangs, forwarded := 0, 0, 0
		for _, s := range slots {
			illegal += s.illegal
			hangs += s.hangs
			if s.forwarded {
				forwarded++
			}
		}
		totalIllegal += illegal
		fmt.Fprintf(w, "%-3d %-11d %-10d %-13d %-6d %d/%d\n", cfg.k, cfg.procs, runs, illegal, hangs, forwarded, runs)
	}
	fmt.Fprintln(w)
	if totalIllegal > 0 {
		return fmt.Errorf("%d illegal one-shot uses", totalIllegal)
	}
	return nil
}

// expE5: Algorithm 5 linearizability.
func expE5(w io.Writer, runs int, seed int64, workers int) error {
	fmt.Fprintln(w, "E5  Algorithm 5: linearizable 1sWRN_k from strong set election (Cor. 37)")
	fmt.Fprintln(w, "k   schedules  linearizable  claim23-bottoms  claim24-successors")
	nonLinear := 0
	for k := 2; k <= 5; k++ {
		type slot struct {
			lin, bottom, succ bool
		}
		slots := make([]slot, runs)
		err := par.ForEach(runs, workers, func(r int) error {
			objects := map[string]sim.Object{}
			impl := wrn.NewImpl(objects, "LW", k)
			progs := make([]sim.Program, k)
			for i := 0; i < k; i++ {
				i := i
				progs[i] = func(ctx *sim.Ctx) sim.Value {
					return impl.TracedWRN(ctx, i, 100+i)
				}
			}
			res, err := sim.Run(sim.Config{
				Objects:   objects,
				Programs:  progs,
				Scheduler: sim.NewRandom(seed + int64(r)),
				Seed:      seed * 31,
				MaxSteps:  1 << 18,
			})
			if err != nil {
				return err
			}
			ops := linearize.Ops(res.Trace, impl.Name())
			var s slot
			s.lin = linearize.Check(wrn.Spec(k), ops).OK
			for p := 0; p < k; p++ {
				if wrn.IsBottom(res.Outputs[p]) {
					s.bottom = true
				} else if res.Outputs[p] == 100+(p+1)%k {
					s.succ = true
				}
			}
			slots[r] = s
			return nil
		})
		if err != nil {
			return err
		}
		lin, bottoms, successors := 0, 0, 0
		for _, s := range slots {
			if s.lin {
				lin++
			}
			if s.bottom {
				bottoms++
			}
			if s.succ {
				successors++
			}
		}
		nonLinear += runs - lin
		fmt.Fprintf(w, "%-3d %-10d %-13d %-16d %d\n", k, runs, lin, bottoms, successors)
	}
	fmt.Fprintln(w)
	if nonLinear > 0 {
		return fmt.Errorf("%d non-linearizable runs", nonLinear)
	}
	return nil
}

// expE9: Algorithm 6 ratio table.
func expE9(w io.Writer, runs int, seed int64, workers int) error {
	fmt.Fprintln(w, "E9  Algorithm 6: m-set consensus for n processes from WRN_k (§7.1)")
	fmt.Fprintln(w, "n    k   guarantee  ratio-ok  schedules  max-distinct  violations")
	totalViolations := 0
	for _, cfg := range []struct{ n, k int }{{3, 3}, {6, 3}, {7, 3}, {12, 3}, {9, 4}, {10, 5}, {24, 3}} {
		m := setconsensus.Guarantee(cfg.n, cfg.k)
		task := tasks.SetConsensus{K: m}
		type slot struct {
			distinct  int
			violation bool
		}
		slots := make([]slot, runs)
		err := par.ForEach(runs, workers, func(r int) error {
			objects := map[string]sim.Object{}
			a := setconsensus.NewAlg6(objects, "G", cfg.n, cfg.k)
			inputs := map[int]sim.Value{}
			progs := make([]sim.Program, cfg.n)
			for i := 0; i < cfg.n; i++ {
				v := i * 10
				inputs[i] = v
				progs[i] = a.Program(i, v)
			}
			res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed + int64(r))})
			if err != nil {
				return err
			}
			o := tasks.OutcomeFromResult(res, inputs)
			slots[r] = slot{distinct: o.DistinctOutputs(), violation: task.Check(o) != nil}
			return nil
		})
		if err != nil {
			return err
		}
		maxDistinct, violations := 0, 0
		for _, s := range slots {
			if s.violation {
				violations++
			}
			if s.distinct > maxDistinct {
				maxDistinct = s.distinct
			}
		}
		totalViolations += violations
		fmt.Fprintf(w, "%-4d %-3d %-10d %-9v %-10d %-13d %d\n",
			cfg.n, cfg.k, m, setconsensus.RatioSufficient(cfg.n, m, cfg.k), runs, maxDistinct, violations)
	}
	fmt.Fprintln(w)
	if totalViolations > 0 {
		return fmt.Errorf("%d set-consensus violations", totalViolations)
	}
	return nil
}
