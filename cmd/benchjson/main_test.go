package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: detobj
cpu: Example CPU
BenchmarkParExploreE4/k=3procs=4/seq-8   2	500000000 ns/op	300000000 B/op	4000000 allocs/op
BenchmarkParExploreE4/k=3procs=4/par-8   2	250000000 ns/op	300000000 B/op	4000000 allocs/op
BenchmarkParExploreE4/k=3procs=4/red-8   100	2500000 ns/op	500000 B/op	16000 allocs/op
BenchmarkParValencyE11/swap/seq-8        1000	200000 ns/op	88000 B/op	1200 allocs/op
BenchmarkParValencyE11/swap/par-8        1000	150000 ns/op	88000 B/op	1200 allocs/op
PASS
`

func TestParsePairsSpeedupsAndReductions(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("benchmarks = %d, want 5", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "BenchmarkParExploreE4/k=3procs=4/seq" {
		t.Errorf("proc suffix not stripped: %q", rep.Benchmarks[0].Name)
	}
	if len(rep.Speedups) != 2 {
		t.Fatalf("speedups = %d, want 2", len(rep.Speedups))
	}
	if s := rep.Speedups[0]; s.Pair != "BenchmarkParExploreE4/k=3procs=4" || s.Speedup != 2.0 {
		t.Errorf("speedup[0] = %+v", s)
	}
	// Only the E4 benchmark has a /red twin.
	if len(rep.Reductions) != 1 {
		t.Fatalf("reductions = %d, want 1", len(rep.Reductions))
	}
	r := rep.Reductions[0]
	if r.Pair != "BenchmarkParExploreE4/k=3procs=4" {
		t.Errorf("reduction pair = %q", r.Pair)
	}
	if r.Speedup != 200.0 {
		t.Errorf("reduction speedup = %v, want 200", r.Speedup)
	}
	if r.SeqAllocs != 4000000 || r.RedAllocs != 16000 {
		t.Errorf("allocs = %d/%d", r.SeqAllocs, r.RedAllocs)
	}
	if r.AllocRatio != 250.0 {
		t.Errorf("alloc ratio = %v, want 250", r.AllocRatio)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty input accepted")
	}
}
