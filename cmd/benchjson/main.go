// Command benchjson converts `go test -bench` output (read from stdin)
// into a machine-readable JSON report, pairing the seq/par sub-benchmark
// twins of bench_parallel_test.go and computing par's speedup over seq.
// Benchmarks that also carry a symmetry-reduced /red twin are paired
// into a reductions section recording the speedup and the allocation
// ratio of the reduced engine over the sequential one.
//
// The report records goos/goarch/cpu from the bench header and
// numcpu/gomaxprocs from this process, so a committed BENCH_N.json is
// honest about the hardware it was measured on: the parallel engines
// cannot beat the sequential ones at GOMAXPROCS = 1, and a reader of the
// file can see that context without re-running anything.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson -o BENCH_6.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup pairs a /seq sub-benchmark with its /par twin.
type Speedup struct {
	Pair    string  `json:"pair"`
	SeqNs   float64 `json:"seq_ns_per_op"`
	ParNs   float64 `json:"par_ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Reduction pairs a /seq sub-benchmark with its symmetry-reduced /red
// twin. Unlike the seq/par pairs, the interesting figure here is the
// allocation collapse as much as the time: the reduced engine visits one
// representative per orbit and replays runs through an arena.
type Reduction struct {
	Pair       string  `json:"pair"`
	SeqNs      float64 `json:"seq_ns_per_op"`
	RedNs      float64 `json:"red_ns_per_op"`
	Speedup    float64 `json:"speedup"`
	SeqAllocs  int64   `json:"seq_allocs_per_op"`
	RedAllocs  int64   `json:"red_allocs_per_op"`
	AllocRatio float64 `json:"alloc_ratio"`
}

// Report is the BENCH_N.json document.
type Report struct {
	Schema     string      `json:"schema"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	NumCPU     int         `json:"numcpu"`
	Gomaxprocs int         `json:"gomaxprocs"`
	Note       string      `json:"note,omitempty"`
	Warning    string      `json:"warning,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
	Reductions []Reduction `json:"reductions,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkParExploreE1/k=6/seq-8   3  412ms/op … (ns/op, B/op, allocs/op)
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "BENCH_6.json", "output file (- for stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data := buf.Bytes()
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and builds the report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		Schema:     "detobj-bench/1",
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}
	if rep.Gomaxprocs < 4 {
		rep.Note = "measured below GOMAXPROCS=4; the parallel engines' speedup materializes at GOMAXPROCS >= 4"
	}
	if rep.NumCPU == 1 {
		rep.Warning = "single-CPU machine: seq/par speedup figures are meaningless here; only ns/op and allocs/op are comparable across runs"
		fmt.Fprintln(os.Stderr, "benchjson: warning:", rep.Warning)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: stripProcSuffix(m[1])}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	rep.Speedups = pairSpeedups(rep.Benchmarks)
	rep.Reductions = pairReductions(rep.Benchmarks)
	return rep, nil
}

// stripProcSuffix removes the trailing -GOMAXPROCS that `go test`
// appends to benchmark names (absent at GOMAXPROCS = 1).
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// pairSpeedups joins each .../seq benchmark with its .../par twin, in the
// order the seq side appeared.
func pairSpeedups(benches []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, b := range benches {
		if !strings.HasSuffix(b.Name, "/seq") {
			continue
		}
		pair := strings.TrimSuffix(b.Name, "/seq")
		par, ok := byName[pair+"/par"]
		if !ok || par.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{
			Pair:    pair,
			SeqNs:   b.NsPerOp,
			ParNs:   par.NsPerOp,
			Speedup: math2(b.NsPerOp / par.NsPerOp),
		})
	}
	return out
}

// pairReductions joins each .../seq benchmark with its .../red twin, in
// the order the seq side appeared.
func pairReductions(benches []Benchmark) []Reduction {
	byName := make(map[string]Benchmark, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Reduction
	for _, b := range benches {
		if !strings.HasSuffix(b.Name, "/seq") {
			continue
		}
		pair := strings.TrimSuffix(b.Name, "/seq")
		red, ok := byName[pair+"/red"]
		if !ok || red.NsPerOp <= 0 {
			continue
		}
		r := Reduction{
			Pair:      pair,
			SeqNs:     b.NsPerOp,
			RedNs:     red.NsPerOp,
			Speedup:   math2(b.NsPerOp / red.NsPerOp),
			SeqAllocs: b.AllocsPerOp,
			RedAllocs: red.AllocsPerOp,
		}
		if red.AllocsPerOp > 0 {
			r.AllocRatio = math2(float64(b.AllocsPerOp) / float64(red.AllocsPerOp))
		}
		out = append(out, r)
	}
	return out
}

// math2 rounds to two decimals without pulling in math for one call.
func math2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
