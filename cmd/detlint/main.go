// Command detlint runs the repository's determinism and model-integrity
// analyzer suite (internal/lint) over the whole module and exits
// nonzero on findings. It is stdlib-only (go/parser, go/ast, go/types,
// go/importer) and type-checks every package of the module, so it also
// acts as a whole-module compile check.
//
// Usage:
//
//	go run ./cmd/detlint ./...
//
// Package patterns are accepted for familiarity but the driver always
// analyzes the module containing the working directory in full — the
// facadeparity rule is inherently whole-module. Findings print as
// file:line:col: rule: message. A finding is suppressed by an inline
//
//	//detlint:allow <rule>[,<rule>...] <justification>
//
// comment on the same or the preceding line; the justification is
// mandatory. See README.md "Static analysis" for the rule catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"detobj/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	rootFlag := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		unknown := make([]string, 0, len(want))
		for r := range want {
			unknown = append(unknown, r)
		}
		sort.Strings(unknown)
		if len(unknown) > 0 {
			fatal(fmt.Errorf("detlint: unknown rule(s) %s", strings.Join(unknown, ", ")))
		}
		analyzers = selected
	}

	m, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(m, analyzers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("detlint: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
