// Command detlint runs the repository's determinism and model-integrity
// analyzer suite (internal/lint) over the whole module and exits
// nonzero on findings. It is stdlib-only (go/parser, go/ast, go/types,
// go/importer) and type-checks every package of the module, so it also
// acts as a whole-module compile check.
//
// Usage:
//
//	go run ./cmd/detlint ./...
//
// Package patterns are accepted for familiarity but the driver always
// analyzes the module containing the working directory in full — the
// facadeparity rule is inherently whole-module. Findings print as
// file:line:col: rule: message. A finding is suppressed by an inline
//
//	//detlint:allow <rule>[,<rule>...] <justification>
//
// comment on the same or the preceding line; the justification is
// mandatory, and the allowaudit rule reports any justified allow that
// no longer suppresses a finding. See README.md "Static analysis" for
// the rule catalogue; v3 adds the SSA-lite/lockset-backed lockorder and
// decisionflow rules.
//
// -rules=<comma-list> runs a subset of the suite (allowaudit only
// judges allows whose rules all ran, so a partial run cannot declare an
// annotation stale). -hot runs just the hot-path rules (hotalloc,
// boxing, arenaready), whose allocation findings are capped by the
// committed per-function budgets in .detlint.hot — each hot rule judges
// only its own budget entries, so a run that skips a rule says nothing
// about that rule's budgets. -parallel runs just the
// parallel-determinism rules (slotdiscipline, mergeorder, sharedsink,
// seedflow; v6), which statically enforce internal/par's ForEach
// contract: workers write only index-derived slots, merges reduce in
// index order, shared sinks match documented shapes, and worker inputs
// are pure functions of the index. -hotreport=<path> additionally
// writes a byte-stable JSON ranking of hot functions by static
// allocation score, cross-referencing the newest BENCH_*.json
// allocs/op figures; when no parsable BENCH_*.json exists the report
// carries a note and the bench columns are simply absent.
//
// Runs are incremental: the result of a clean run is cached in
// .detlint.cache at the module root, keyed by a content hash of every
// .go file (tests included), go.mod, EXPERIMENTS.md, the rule set, and
// the detlint version. An unchanged tree replays the cached report
// ("detlint: cache hit" on stderr) without re-type-checking; -no-cache
// forces a fresh run. -json prints the report as JSON; -sarif writes a
// SARIF 2.1.0 log for code-scanning upload. Both formats are byte-stable
// across runs on an unchanged tree, and every finding carries a stable
// ID independent of line numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"detobj/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	rootFlag := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	list := flag.Bool("list", false, "alias for -list-rules")
	listRules := flag.Bool("list-rules", false, "print the available rules (name and one-line doc, byte-stable order) and exit")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of text")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to the given path")
	noCache := flag.Bool("no-cache", false, "ignore and do not write the result cache")
	hot := flag.Bool("hot", false, "run only the hot-path rules (hotalloc, boxing, arenaready)")
	parallel := flag.Bool("parallel", false, "run only the parallel-determinism rules (slotdiscipline, mergeorder, sharedsink, seedflow)")
	hotReport := flag.String("hotreport", "", "write a JSON ranking of hot functions by allocation score to the given path")
	flag.Parse()

	if *list || *listRules {
		os.Stdout.WriteString(ruleList())
		return
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	analyzers := lint.Analyzers()
	if (*hot || *parallel) && *rules != "" {
		fatal(fmt.Errorf("detlint: -hot/-parallel and -rules are mutually exclusive"))
	}
	if *hot && *parallel {
		fatal(fmt.Errorf("detlint: -hot and -parallel are mutually exclusive"))
	}
	if *hot {
		analyzers = lint.HotAnalyzers()
	}
	if *parallel {
		analyzers = lint.ParallelAnalyzers()
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		unknown := make([]string, 0, len(want))
		for r := range want {
			unknown = append(unknown, r)
		}
		sort.Strings(unknown)
		if len(unknown) > 0 {
			fatal(fmt.Errorf("detlint: unknown rule(s) %s", strings.Join(unknown, ", ")))
		}
		analyzers = selected
	}

	var key string
	var report *lint.Report
	if !*noCache {
		var err error
		key, err = lint.CacheKey(root, analyzers)
		if err != nil {
			fatal(err)
		}
		if c := lint.LoadCache(root); c != nil && c.Key == key {
			report = c.Report
			fmt.Fprintln(os.Stderr, "detlint: cache hit")
		}
	}
	var mod *lint.Module
	if report == nil || *hotReport != "" {
		m, err := lint.Load(root)
		if err != nil {
			fatal(err)
		}
		mod = m
	}
	if report == nil {
		report = lint.NewReport(root, lint.Run(mod, analyzers))
		if !*noCache {
			if err := lint.SaveCache(root, &lint.CachedRun{Key: key, Report: report}); err != nil {
				fmt.Fprintf(os.Stderr, "detlint: cache not written: %v\n", err)
			}
		}
	}

	if *hotReport != "" {
		hr := lint.BuildHotReport(mod)
		if hr.Note != "" {
			fmt.Fprintf(os.Stderr, "detlint: hotreport: %s\n", hr.Note)
		}
		b, err := hr.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*hotReport, b, 0o644); err != nil {
			fatal(err)
		}
	}

	if *sarifOut != "" {
		b, err := report.SARIF(analyzers)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*sarifOut, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		b, err := report.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
	} else {
		for _, f := range report.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", filepath.FromSlash(f.File), f.Line, f.Col, f.Rule, f.Msg)
		}
	}
	if len(report.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(report.Findings))
		os.Exit(1)
	}
}

// ruleList renders the registered rule set for -list-rules: one
// "name doc" line per rule in registry order, byte-stable run to run so
// the README rule-table check can diff against it.
func ruleList() string {
	var b strings.Builder
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(&b, "%-17s %s\n", a.Name, a.Doc)
	}
	return b.String()
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("detlint: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
