package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"detobj/internal/lint"
)

// TestRuleListShape pins the -list-rules contract: one line per
// registered rule, in registry order, name first and one-line doc
// after. The order is the byte-stable surface the README table check
// below builds on.
func TestRuleListShape(t *testing.T) {
	out := ruleList()
	if out != ruleList() {
		t.Fatal("ruleList is not byte-stable across calls")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	analyzers := lint.Analyzers()
	if len(lines) != len(analyzers) {
		t.Fatalf("ruleList has %d lines, registry has %d rules", len(lines), len(analyzers))
	}
	for i, a := range analyzers {
		name, doc, ok := strings.Cut(lines[i], " ")
		if !ok || name != a.Name {
			t.Errorf("line %d = %q, want rule %q first", i, lines[i], a.Name)
			continue
		}
		if strings.TrimSpace(doc) != a.Doc {
			t.Errorf("line %d doc = %q, want %q", i, strings.TrimSpace(doc), a.Doc)
		}
		if strings.ContainsAny(a.Doc, "\n") {
			t.Errorf("rule %s doc spans lines; -list-rules is one line per rule", a.Name)
		}
	}
}

// TestREADMERuleTable keeps README.md's "Static analysis" table and the
// rule registry in lockstep: every rule -list-rules emits has a table
// row, and every table row names a registered rule.
func TestREADMERuleTable(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	known := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(ruleList(), "\n"), "\n") {
		name, _, _ := strings.Cut(line, " ")
		known[name] = true
		if !strings.Contains(readme, "| `"+name+"` |") {
			t.Errorf("rule %s has no row in README.md's rule table", name)
		}
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	for _, m := range rowRe.FindAllStringSubmatch(readme, -1) {
		if !known[m[1]] {
			t.Errorf("README.md rule table row %q names no registered rule", m[1])
		}
	}
}
