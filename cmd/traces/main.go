// Command traces records executions of the Algorithm 5 implementation as
// JSON trace files and re-checks recorded traces for linearizability
// against the 1sWRN_k sequential specification — the artifact format for
// experiment E5.
//
// Usage:
//
//	traces -record [-k K] [-seed S] [-o trace.json]   # run and record
//	traces -check trace.json                          # verify a recording
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"detobj/internal/linearize"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

func main() {
	record := flag.Bool("record", false, "run Algorithm 5 and record a trace")
	check := flag.String("check", "", "trace file to verify")
	k := flag.Int("k", 3, "WRN arity")
	seed := flag.Int64("seed", 1, "scheduler seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	switch {
	case *record:
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := recordTrace(w, *k, *seed); err != nil {
			fatal(err)
		}
	case *check != "":
		f, err := os.Open(*check)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		verdict, err := checkTrace(f)
		if err != nil {
			fatal(err)
		}
		fmt.Println(verdict)
		if verdict != "linearizable" {
			os.Exit(2)
		}
	default:
		fatal(errors.New("specify -record or -check FILE"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traces:", err)
	os.Exit(1)
}

// fileTrace is the on-disk trace format. Values are rendered as strings so
// the format is stable across JSON round-trips (⊥ is the string "⊥").
type fileTrace struct {
	K      int         `json:"k"`
	Object string      `json:"object"`
	Seed   int64       `json:"seed"`
	Events []fileEvent `json:"events"`
}

type fileEvent struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Proc   int    `json:"proc"`
	Object string `json:"object"`
	Op     string `json:"op"`
	Index  *int   `json:"index,omitempty"`
	Value  string `json:"value,omitempty"`
	Out    string `json:"out,omitempty"`
}

// recordTrace runs one Algorithm 5 execution with k processes and writes
// the logical-operation trace as JSON.
func recordTrace(w io.Writer, k int, seed int64) error {
	objects := map[string]sim.Object{}
	impl := wrn.NewImpl(objects, "LW", k)
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return impl.TracedWRN(ctx, i, fmt.Sprintf("v%d", i))
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:   objects,
		Programs:  progs,
		Scheduler: sim.NewRandom(seed),
		Seed:      seed,
		MaxSteps:  1 << 18,
	})
	if err != nil {
		return err
	}
	ft := fileTrace{K: k, Object: impl.Name(), Seed: seed}
	for _, e := range res.Trace.Events {
		if e.Object != impl.Name() {
			continue
		}
		fe := fileEvent{
			Seq:    e.Seq,
			Kind:   e.Kind.String(),
			Proc:   e.Proc,
			Object: e.Object,
			Op:     e.Op,
		}
		if e.Kind == sim.EventCall {
			idx := e.Args[0].(int)
			fe.Index = &idx
			fe.Value = fmt.Sprint(e.Args[1])
		}
		if e.Kind == sim.EventReturn {
			fe.Out = fmt.Sprint(e.Out)
		}
		ft.Events = append(ft.Events, fe)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ft)
}

// checkTrace loads a recorded trace and reports "linearizable" or
// "NOT linearizable".
func checkTrace(r io.Reader) (string, error) {
	var ft fileTrace
	if err := json.NewDecoder(r).Decode(&ft); err != nil {
		return "", fmt.Errorf("decode: %w", err)
	}
	if ft.K < 2 {
		return "", fmt.Errorf("invalid arity %d", ft.K)
	}
	ops, err := opsFromFile(ft)
	if err != nil {
		return "", err
	}
	if linearize.Check(stringSpec(ft.K), ops).OK {
		return "linearizable", nil
	}
	return "NOT linearizable", nil
}

// opsFromFile pairs call/return events per process into operations.
func opsFromFile(ft fileTrace) ([]linearize.Op, error) {
	open := map[int]*linearize.Op{}
	var done []linearize.Op
	for _, e := range ft.Events {
		switch e.Kind {
		case "call":
			if e.Index == nil {
				return nil, fmt.Errorf("call event %d without index", e.Seq)
			}
			open[e.Proc] = &linearize.Op{
				Proc: e.Proc,
				Name: e.Op,
				Args: []sim.Value{*e.Index, e.Value},
				Call: e.Seq,
			}
		case "return":
			op, ok := open[e.Proc]
			if !ok {
				return nil, fmt.Errorf("return event %d without open call", e.Seq)
			}
			op.Return = e.Seq
			op.Out = e.Out
			done = append(done, *op)
			delete(open, e.Proc)
		}
	}
	return done, nil
}

// stringSpec is the 1sWRN_k sequential specification over string-rendered
// values, matching the file format ("⊥" is bottom).
func stringSpec(k int) linearize.Spec {
	return linearize.Spec{
		Init: func() any {
			cells := make([]string, k)
			for i := range cells {
				cells[i] = "⊥"
			}
			return cells
		},
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			cells := state.([]string)
			next := make([]string, k)
			copy(next, cells)
			i := args[0].(int)
			next[i] = args[1].(string)
			return next, next[(i+1)%k]
		},
		Key: func(state any) string { return fmt.Sprint(state) },
	}
}
