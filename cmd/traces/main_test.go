package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordAndCheckRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var buf bytes.Buffer
		if err := recordTrace(&buf, 3, seed); err != nil {
			t.Fatalf("seed %d: record: %v", seed, err)
		}
		verdict, err := checkTrace(&buf)
		if err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		if verdict != "linearizable" {
			t.Fatalf("seed %d: verdict %q", seed, verdict)
		}
	}
}

func TestRecordLargerK(t *testing.T) {
	var buf bytes.Buffer
	if err := recordTrace(&buf, 5, 9); err != nil {
		t.Fatalf("record: %v", err)
	}
	if verdict, err := checkTrace(&buf); err != nil || verdict != "linearizable" {
		t.Fatalf("verdict %q err %v", verdict, err)
	}
}

func TestCheckRejectsGarbage(t *testing.T) {
	if _, err := checkTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := checkTrace(strings.NewReader(`{"k":1,"events":[]}`)); err == nil {
		t.Error("invalid arity accepted")
	}
}

func TestCheckDetectsTamperedTrace(t *testing.T) {
	// A trace claiming a read of a value that was never written cannot
	// linearize.
	tampered := `{
	  "k": 3,
	  "object": "LW",
	  "events": [
	    {"seq":0,"kind":"call","proc":0,"object":"LW","op":"WRN","index":0,"value":"v0"},
	    {"seq":1,"kind":"return","proc":0,"object":"LW","op":"WRN","out":"ghost"}
	  ]
	}`
	verdict, err := checkTrace(strings.NewReader(tampered))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if verdict != "NOT linearizable" {
		t.Errorf("verdict = %q, want NOT linearizable", verdict)
	}
}

func TestCheckOrphanReturnRejected(t *testing.T) {
	orphan := `{"k":3,"object":"LW","events":[
	  {"seq":0,"kind":"return","proc":0,"object":"LW","op":"WRN","out":"x"}
	]}`
	if _, err := checkTrace(strings.NewReader(orphan)); err == nil {
		t.Error("orphan return accepted")
	}
}

func TestCheckCallWithoutIndexRejected(t *testing.T) {
	bad := `{"k":3,"object":"LW","events":[
	  {"seq":0,"kind":"call","proc":0,"object":"LW","op":"WRN","value":"v"}
	]}`
	if _, err := checkTrace(strings.NewReader(bad)); err == nil {
		t.Error("call without index accepted")
	}
}
