package main

import (
	"strings"
	"testing"

	"detobj/internal/core"
)

func TestRunAll(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"E2", "E7", "E8", "E10", "separated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every E10 data row must end with a successful separation.
	inE10 := false
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "E10") {
			inE10 = true
			continue
		}
		if inE10 && (strings.HasPrefix(line, "Hasse") || strings.HasPrefix(line, "E1")) {
			inE10 = false
		}
		if !inE10 || len(strings.Fields(line)) < 8 {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" || strings.HasPrefix(strings.TrimSpace(line), "(") {
			continue
		}
		rows++
		if fields[len(fields)-1] != "true" {
			t.Errorf("separation witness failed: %s", line)
		}
	}
	if rows != 20 { // n = 2..6 × k = 1..4
		t.Errorf("parsed %d E10 rows, want 20", rows)
	}
}

func TestRunUnknown(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nope", 10); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestE8MatrixShape: the hierarchy table is a strict total order rendered
// with > above the diagonal and < below.
func TestE8MatrixShape(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e8", 8); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, ">") || !strings.Contains(out, "<") || !strings.Contains(out, "=") {
		t.Errorf("matrix symbols missing:\n%s", out)
	}
}

func TestSymbol(t *testing.T) {
	cases := map[core.Ordering]string{
		core.Stronger:     ">",
		core.Weaker:       "<",
		core.Equivalent:   "=",
		core.Incomparable: "?",
	}
	for o, want := range cases {
		if got := symbol(o); got != want {
			t.Errorf("symbol(%v) = %q, want %q", o, got, want)
		}
	}
}
