// Command hierarchy prints the synchronization-power tables of the
// reproduction: the Theorem 41 implementability matrix (E7), the WRN
// strength summary (E2), the 1sWRN hierarchy (E8), and the O(n,k)
// conjunction-object hierarchy with its separation witnesses (E10).
//
// Usage:
//
//	hierarchy [-exp e2|e7|e8|e10|all] [-max N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"detobj/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to print: e2, e7, e8, e10, e17, hasse or all")
	maxN := flag.Int("max", 12, "largest system size in tables")
	flag.Parse()
	if err := run(os.Stdout, *exp, *maxN); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, maxN int) error {
	type experiment struct {
		name string
		fn   func(io.Writer, int) error
	}
	all := []experiment{
		{"e2", expE2}, {"e7", expE7}, {"e8", expE8}, {"e10", expE10}, {"e17", expE17}, {"hasse", expHasse},
	}
	matched := false
	for _, e := range all {
		if exp == "all" || exp == e.name {
			matched = true
			if err := e.fn(w, maxN); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// expE2: WRN's place between registers and 2-consensus.
func expE2(w io.Writer, _ int) error {
	fmt.Fprintln(w, "E2  WRN_k sits strictly between registers and 2-consensus")
	fmt.Fprintln(w, "k   equivalent-task        consensus-number  solves-(k,k-1)  registers-can  implements-2-consensus")
	for k := 3; k <= 8; k++ {
		eq := core.WRNEquivalent(k)
		fmt.Fprintf(w, "%-3d %-22v %-17d %-15v %-14v %v\n",
			k, eq, core.WRNConsensusNumber(k),
			true,  // Algorithm 2, verified exhaustively in E1
			false, // k-set consensus is unsolvable from registers (BG/HS/SZ)
			core.Implements(eq.N, eq.K, 2, 1))
	}
	fmt.Fprintln(w)
	return nil
}

// expE7: the Theorem 41 implementability matrix.
func expE7(w io.Writer, maxN int) error {
	fmt.Fprintln(w, "E7  Theorem 41: (n,k)-set consensus from (m,j)-set consensus and registers")
	for _, src := range []core.SetCons{{N: 3, K: 2}, {N: 4, K: 3}, {N: 5, K: 4}, {N: 6, K: 2}} {
		fmt.Fprintf(w, "source %v — rows n = 2..%d, columns k = 1..n-1 (y = implementable)\n", src, maxN)
		matrix := core.ImplementabilityMatrix(src, maxN)
		for i, row := range matrix {
			fmt.Fprintf(w, "  n=%-3d ", i+2)
			for _, ok := range row {
				if ok {
					fmt.Fprint(w, "y ")
				} else {
					fmt.Fprint(w, ". ")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
	return nil
}

// expE8: the 1sWRN hierarchy (Corollary 42).
func expE8(w io.Writer, maxN int) error {
	maxK := maxN
	if maxK < 6 {
		maxK = 6
	}
	fmt.Fprintln(w, "E8  Corollary 42: the 1sWRN hierarchy (rows/cols k = 3..N; cell = row vs column)")
	levels := core.WRNHierarchyLevels(maxK)
	fmt.Fprint(w, "      ")
	for j := range levels {
		fmt.Fprintf(w, "k=%-3d ", 3+j)
	}
	fmt.Fprintln(w)
	for i, row := range levels {
		fmt.Fprintf(w, "k=%-3d ", 3+i)
		for _, o := range row {
			fmt.Fprintf(w, "%-5s ", symbol(o))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  (> = strictly stronger, < = strictly weaker, = = equivalent)")
	fmt.Fprintln(w)
	return nil
}

func symbol(o core.Ordering) string {
	switch o {
	case core.Stronger:
		return ">"
	case core.Weaker:
		return "<"
	case core.Equivalent:
		return "="
	default:
		return "?"
	}
}

// expE10: the O(n,k) hierarchy of PODC'16 (reconstructed family). Every
// witness must separate — a non-separating row means the reconstructed
// hierarchy collapsed, so the experiment fails rather than printing a
// plausible table and exiting clean.
func expE10(w io.Writer, _ int) error {
	fmt.Fprintln(w, "E10 PODC'16: infinite strictly increasing hierarchies at every consensus level n >= 2")
	fmt.Fprintln(w, "    (reconstructed family O(n,k) = n-consensus ∧ (n·2^(k+1), 2)-set consensus)")
	fmt.Fprintln(w, "n   k   object                              cons-num  witness-procs  stronger-K  weaker-K  separated")
	unseparated := 0
	for n := 2; n <= 6; n++ {
		f := core.Family{N: n}
		for k := 1; k <= 4; k++ {
			member := f.At(k)
			wit := f.Separation(k)
			if !wit.Separated() {
				unseparated++
			}
			fmt.Fprintf(w, "%-3d %-3d %-35v %-9d %-14d %-11d %-9d %v\n",
				n, k, member, member.ConsensusNumber(), wit.Procs, wit.TaskK, wit.WeakerBest, wit.Separated())
		}
	}
	fmt.Fprintln(w)
	if unseparated > 0 {
		return fmt.Errorf("%d hierarchy witness(es) failed to separate", unseparated)
	}
	return nil
}

// expE17: the wealth, counted — distinct synchronization-power classes.
func expE17(w io.Writer, maxN int) error {
	fmt.Fprintln(w, "E17 The wealth quantified: pairwise-inequivalent set-consensus powers")
	fmt.Fprintln(w, "maxN  objects  power-classes  at-consensus-number-1")
	for _, cap := range []int{6, 10, maxN, 20} {
		if cap < 3 {
			continue
		}
		classes := core.Classes(cap)
		byNum := core.CountByConsensusNumber(cap)
		objects := cap * (cap - 1) / 2
		fmt.Fprintf(w, "%-5d %-8d %-14d %d\n", cap, objects, len(classes), byNum[1])
	}
	fmt.Fprintln(w, "  (every object is its own class: consensus number collapses 'wealth' that task power keeps apart)")
	fmt.Fprintln(w)
	return nil
}

// expHasse: the covering relations of the sub-consensus landscape.
func expHasse(w io.Writer, maxN int) error {
	cap := maxN
	if cap > 7 {
		cap = 7 // the diagram grows fast; keep the text rendering readable
	}
	fmt.Fprintf(w, "Hasse diagram of the implementability order, objects with n <= %d\n", cap)
	edges := core.HasseDiagram(cap)
	for _, e := range edges {
		fmt.Fprintf(w, "  %v  >  %v\n", e.A, e.B)
	}
	fmt.Fprintf(w, "  (%d covering edges; every object is its own class)\n\n", len(edges))
	return nil
}
