// Command modelcheck runs the exhaustive verification experiments: the
// mechanized Lemma 38 indistinguishability analysis over the object zoo
// (E6), the valency analysis of the 2-consensus protocols (E11), and
// the recoverable-consensus calibration under amnesiac crash-restart
// (E20).
//
// Every row carries its expected verdict (the paper's classification,
// extended by Ovens 2024 for the restart rows); the driver exits
// non-zero when any computed verdict diverges, so a regression in the
// engines or the objects cannot print a plausible table and still
// report success. The E6/E11 engines fan out across -parallel workers
// (default GOMAXPROCS) with output byte-identical to the sequential
// engines; E20's adversarial sweeps are sequential but each sweep point
// is an exhaustive deterministic tree of its own.
//
// With -stats the driver also runs the symmetry-reduction engines
// (modelcheck.ExploreReduced / AnalyzeValencyReduced) next to the
// exhaustive ones and prints their transposition-table accounting —
// representatives, distinct configurations, hits and misses — while
// cross-checking every reconstructed count and verdict against the
// unreduced oracle; any divergence exits non-zero.
//
// Usage:
//
//	modelcheck [-exp e6|e11|e20|all] [-parallel P] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"detobj/internal/chaos"
	"detobj/internal/consensus"
	"detobj/internal/modelcheck"
	"detobj/internal/par"
	"detobj/internal/recoverable"
	"detobj/internal/registers"
	"detobj/internal/sim"
	"detobj/internal/wrn"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e6, e11, e20 or all")
	parallel := flag.Int("parallel", 0, "worker goroutines for the engines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "run the symmetry-reduction engines next to the exhaustive ones and print their transposition-table accounting")
	flag.Parse()
	if err := run(os.Stdout, *exp, *parallel, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, workers int, stats bool) error {
	workers = par.Normalize(workers, -1)
	matched := false
	if exp == "all" || exp == "e6" {
		matched = true
		if err := expE6(w, workers); err != nil {
			return fmt.Errorf("e6: %w", err)
		}
	}
	if exp == "all" || exp == "e11" {
		matched = true
		if err := expE11(w, workers); err != nil {
			return fmt.Errorf("e11: %w", err)
		}
	}
	if stats && (exp == "all" || exp == "e11") {
		if err := expReduced(w, workers); err != nil {
			return fmt.Errorf("reduction: %w", err)
		}
	}
	if exp == "all" || exp == "e20" {
		matched = true
		if err := expE20(w, workers); err != nil {
			return fmt.Errorf("e20: %w", err)
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// expE6: the Lemma 38 obligations across the object zoo.
func expE6(w io.Writer, workers int) error {
	fmt.Fprintln(w, "E6  Lemma 38 mechanized: indistinguishability obligations per object")
	fmt.Fprintln(w, "    pass = no process can both survive an operation race and observe its order")
	fmt.Fprintln(w, "object          states  pairs   distinguishing  degenerate  verdict")

	type row struct {
		name  string
		init  modelcheck.Finite
		alpha []sim.Invocation
		// wantPass is the paper's classification: consensus number 1
		// passes, consensus number >= 2 must expose a distinguishing pair.
		wantPass bool
	}
	regAlpha := []sim.Invocation{
		{Op: "read"},
		{Op: "write", Args: []sim.Value{"p"}},
		{Op: "write", Args: []sim.Value{"q"}},
	}
	swapAlpha := []sim.Invocation{
		{Op: "swap", Args: []sim.Value{"p"}},
		{Op: "swap", Args: []sim.Value{"q"}},
	}
	cellAlpha := []sim.Invocation{
		{Op: "propose", Args: []sim.Value{"p"}},
		{Op: "propose", Args: []sim.Value{"q"}},
	}
	rows := []row{
		{"register", registers.New("init"), regAlpha, true},
		{"WRN_3", wrn.New(3), modelcheck.WRNAlphabet(3, 2), true},
		{"WRN_4", wrn.New(4), modelcheck.WRNAlphabet(4, 2), true},
		{"WRN_5", wrn.New(5), modelcheck.WRNAlphabet(5, 2), true},
		{"WRN_6", wrn.New(6), modelcheck.WRNAlphabet(6, 2), true},
		{"1sWRN_3", wrn.NewOneShot(3), modelcheck.WRNAlphabet(3, 2), true},
		{"WRN_2=SWAP", wrn.New(2), modelcheck.WRNAlphabet(2, 2), false},
		{"swap", consensus.NewSwap(nil), swapAlpha, false},
		{"test-and-set", consensus.NewTestAndSet(), []sim.Invocation{{Op: "tas"}}, false},
		{"consensus-cell", consensus.NewCell(4), cellAlpha, false},
	}
	wrong := 0
	for _, r := range rows {
		rep, err := modelcheck.CheckIndistinguishabilityParallel(r.init, r.alpha, 1<<15, workers)
		if err != nil {
			return err
		}
		verdict := "PASS (cannot solve 2-consensus this way)"
		if !rep.Passed() {
			verdict = "FAIL (exposes 2-consensus power)"
		}
		if rep.Passed() != r.wantPass {
			verdict += " ** UNEXPECTED **"
			wrong++
		}
		fmt.Fprintf(w, "%-15s %-7d %-7d %-15d %-11d %s\n",
			r.name, rep.States, rep.Pairs, len(rep.Failures), len(rep.Degenerate), verdict)
	}
	fmt.Fprintln(w)
	if wrong > 0 {
		return fmt.Errorf("%d object(s) contradict the paper's classification", wrong)
	}
	return nil
}

// e11Row is one protocol of the E11 table, carrying the symmetry group
// the reduction cross-check quotients it by.
type e11Row struct {
	name string
	f    modelcheck.Factory
	sym  modelcheck.Symmetry
	// wantAgreement: every protocol agrees except the naive 3-process
	// one on WRN_2, which must exhibit a disagreeing execution.
	wantAgreement bool
}

// e11Rows builds the E11 protocol table. The two-process protocols are
// fully symmetric in their proposers; the naive 3-process one only in
// the two processes sharing WRN index 0.
func e11Rows() []e11Row {
	two := func(build func(map[string]sim.Object, string, sim.Value, sim.Value) []sim.Program, obj string) modelcheck.Factory {
		return func() sim.Config {
			objects := map[string]sim.Object{}
			progs := build(objects, obj, 10, 20)
			return sim.Config{Objects: objects, Programs: progs}
		}
	}
	sym2 := modelcheck.SymmetricClasses(2, []int{0, 1})
	sym2.Rename = modelcheck.RenameByInputs([]sim.Value{10, 20})
	naiveSym := modelcheck.SymmetricClasses(3, []int{0, 2})
	naiveSym.Rename = modelcheck.RenameByInputs([]sim.Value{10, 20, 30})
	return []e11Row{
		{"2-cons from SWAP", two(consensus.TwoConsFromSwap, "C"), sym2, true},
		{"2-cons from WRN_2", two(consensus.TwoConsFromWRN2, "W"), sym2, true},
		{"2-cons from TAS", two(consensus.TwoConsFromTAS, "T"), sym2, true},
		{"2-cons from queue", two(consensus.TwoConsFromQueue, "Q"), sym2, true},
		{"2-cons from f&add", two(consensus.TwoConsFromFetchAdd, "F"), sym2, true},
		{"3 procs on WRN_2", func() sim.Config {
			objects := map[string]sim.Object{}
			progs := consensus.ThreeFromWRN2Naive(objects, "W", [3]sim.Value{10, 20, 30})
			return sim.Config{Objects: objects, Programs: progs}
		}, naiveSym, false},
	}
}

// expE11: valency analysis of the 2-consensus protocols.
func expE11(w io.Writer, workers int) error {
	fmt.Fprintln(w, "E11 Valency analysis: SWAP/WRN_2/TAS solve 2-consensus; the naive 3-process protocol breaks")
	fmt.Fprintln(w, "protocol            configs  executions  bivalent  critical  agreement")
	wrong := 0
	for _, r := range e11Rows() {
		rep, err := modelcheck.AnalyzeValencyParallel(r.f, 0, workers)
		if err != nil {
			return err
		}
		note := ""
		if rep.Agreement != r.wantAgreement {
			note = "  ** UNEXPECTED **"
			wrong++
		}
		fmt.Fprintf(w, "%-19s %-8d %-11d %-9d %-9d %v%s\n",
			r.name, rep.Configs, rep.Executions, rep.Bivalent, rep.Critical, rep.Agreement, note)
	}
	fmt.Fprintln(w)
	if wrong > 0 {
		return fmt.Errorf("%d protocol(s) contradict the paper's classification", wrong)
	}
	return nil
}

// expReduced (-stats): the symmetry-reduction engines run next to the
// exhaustive ones. The E11 protocols are re-analyzed with
// AnalyzeValencyReduced under their proposer symmetries, and the E4
// relaxed-WRN race is re-explored with ExploreReduced under follower
// symmetry; every reconstructed count and verdict is cross-checked
// against the unreduced oracle and any divergence is an error.
func expReduced(w io.Writer, workers int) error {
	fmt.Fprintln(w, "E11r Symmetry + transposition reduction vs the exhaustive oracle")
	fmt.Fprintln(w, "protocol            group  reduced  runs    hits    misses  executions  verdict")
	wrong := 0
	for _, r := range e11Rows() {
		oracle, err := modelcheck.AnalyzeValencyParallel(r.f, 0, workers)
		if err != nil {
			return err
		}
		rep, srep, err := modelcheck.AnalyzeValencyReduced(r.f, modelcheck.Reduced{Sym: r.sym}, 0)
		if err != nil {
			return fmt.Errorf("%s reduced: %w", r.name, err)
		}
		verdict := "match"
		if rep.Configs != oracle.Configs || rep.Executions != oracle.Executions ||
			rep.Bivalent != oracle.Bivalent || rep.Critical != oracle.Critical ||
			rep.Agreement != oracle.Agreement || !equalStrings(rep.Values, oracle.Values) {
			verdict = "** MISMATCH **"
			wrong++
		}
		fmt.Fprintf(w, "%-19s %-6d %-8d %-7d %-7d %-7d %-11d %s\n",
			r.name, srep.Group, srep.ReducedConfigs, srep.Runs, srep.Hits, srep.Misses, srep.Executions, verdict)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "E4r  Reduced exploration of the relaxed-WRN race (followers interchangeable)")
	fmt.Fprintln(w, "workload            group  reduced  runs    hits    misses  executions  verdict")
	for _, procs := range []int{4, 5} {
		f := relaxedE4Factory(3, procs)
		followers := make([]int, procs-1)
		for i := range followers {
			followers[i] = i + 1
		}
		srep, err := modelcheck.ExploreReduced(f, modelcheck.Reduced{
			Sym: modelcheck.SymmetricClasses(procs, followers),
		}, 1<<40, nil)
		if err != nil {
			return fmt.Errorf("E4 procs=%d reduced: %w", procs, err)
		}
		verdict := "match"
		// procs=5 is exactly what the reduction buys: the unreduced
		// count is out of interactive reach, so it is cross-checked at
		// procs=4 here (and once offline for procs=5 — see
		// TestReducedE4Procs5 in internal/modelcheck).
		if procs == 4 {
			oracle, err := modelcheck.ExploreParallel(f, 1<<40, workers, func(modelcheck.Execution) error { return nil })
			if err != nil {
				return fmt.Errorf("E4 procs=4 oracle: %w", err)
			}
			if srep.Executions != oracle {
				verdict = "** MISMATCH **"
				wrong++
			}
		}
		fmt.Fprintf(w, "k=3 procs=%-9d %-6d %-8d %-7d %-7d %-7d %-11d %s\n",
			procs, srep.Group, srep.ReducedConfigs, srep.Runs, srep.Hits, srep.Misses, srep.Executions, verdict)
	}
	fmt.Fprintln(w)
	if wrong > 0 {
		return fmt.Errorf("%d reduced verdict(s) diverge from the exhaustive oracle", wrong)
	}
	return nil
}

// relaxedE4Factory is the E4 workload: procs contenders racing on a
// relaxed WRN_k wrapper, process 0 alone on index 1.
func relaxedE4Factory(k, procs int) modelcheck.Factory {
	return func() sim.Config {
		objects := map[string]sim.Object{}
		rlx, _ := wrn.NewRelaxed(objects, "W", k)
		progs := make([]sim.Program, procs)
		for p := 0; p < procs; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				if p == 0 {
					return rlx.RlxWRN(ctx, 1, "solo")
				}
				return rlx.RlxWRN(ctx, 0, fmt.Sprintf("p%d", p))
			}
		}
		return sim.Config{Objects: objects, Programs: progs}
	}
}

// equalStrings compares two string slices element-wise.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// expE20: recoverable-consensus calibration. Each object's restart-aware
// 2-consensus protocol (durable proposal/decision registers around the
// racing object) is analyzed twice: once under the plain valency engine
// — the full-persistence model, where a recovering process resumes with
// every bit of its state, so verdicts coincide with the asynchronous
// ones of E11 — and once under an exhaustive amnesiac crash-restart
// sweep, where chaos.NewCrashRestart wipes the victim's volatile state
// and re-runs it from the top at every (victim, crashAt, window) point.
// Per Ovens 2024, the plain objects lose their consensus power to the
// amnesiac restart (the winner forgets it won, or a re-applied WRN step
// reads its rival's later write) while the recoverable implementations
// retain it; any row contradicting that calibration exits non-zero.
func expE20(w io.Writer, workers int) error {
	fmt.Fprintln(w, "E20 Recoverable consensus: amnesiac restarts strip plain objects of their power (Ovens 2024)")
	fmt.Fprintln(w, "    full-persist = plain valency analysis (recovery resumes with all state, as in E11)")
	fmt.Fprintln(w, "    amnesiac     = exhaustive valency under CrashRestart sweeps of victim x crashAt x window")
	fmt.Fprintln(w, "object             full-persist  amnesiac   sweeps  configs   executions  verdict")

	type row struct {
		name  string
		build func(map[string]sim.Object, string, sim.Value, sim.Value) []sim.Program
		// wantAmnesiac: recoverable implementations keep agreement under
		// amnesiac restart; plain ones must exhibit a disagreement.
		wantAmnesiac bool
	}
	rows := []row{
		{"plain TAS", recoverable.TwoConsFromPlainTAS, false},
		{"recoverable TAS", recoverable.TwoConsFromRecTAS, true},
		{"plain WRN_2", recoverable.TwoConsFromPlainWRN2, false},
		{"recoverable WRN_2", recoverable.TwoConsFromRecWRN2, true},
	}
	victims := []int{0, 1}
	crashAts := []int{0, 1, 2, 3, 4, 5, 6}
	windows := []int{0, 3}
	wrong := 0
	for _, r := range rows {
		f := func() sim.Config {
			objects := map[string]sim.Object{}
			progs := r.build(objects, "X", 10, 20)
			return sim.Config{Objects: objects, Programs: progs}
		}
		full, err := modelcheck.AnalyzeValencyParallel(f, 0, workers)
		if err != nil {
			return fmt.Errorf("%s full-persistence: %w", r.name, err)
		}
		sweeps, configs, executions, disagreeing := 0, full.Configs, full.Executions, 0
		//detlint:hot the E20 sweep is the calibration's hot loop: one exhaustive valency tree per (victim, crashAt, window) point
		for _, victim := range victims {
			for _, crashAt := range crashAts {
				for _, window := range windows {
					victim, crashAt, window := victim, crashAt, window
					rep, err := modelcheck.AnalyzeValencyUnder(f, func(inner sim.Scheduler) sim.Scheduler {
						return chaos.NewCrashRestart(inner, chaos.NewReport(0), victim, crashAt, window)
					}, 0)
					if err != nil {
						return fmt.Errorf("%s amnesiac victim=%d crashAt=%d window=%d: %w",
							r.name, victim, crashAt, window, err)
					}
					sweeps++
					configs += rep.Configs
					executions += rep.Executions
					if !rep.Agreement {
						disagreeing++
					}
				}
			}
		}
		fullCol, amnesiacCol := verdictWord(full.Agreement), verdictWord(disagreeing == 0)
		verdict := "power retained"
		if !r.wantAmnesiac {
			verdict = "consensus power lost to the restart"
		}
		if full.Agreement != true || (disagreeing == 0) != r.wantAmnesiac {
			verdict += "  ** UNEXPECTED **"
			wrong++
		}
		fmt.Fprintf(w, "%-18s %-13s %-10s %-7d %-9d %-11d %s\n",
			r.name, fullCol, amnesiacCol, sweeps, configs, executions, verdict)
	}
	fmt.Fprintln(w)
	if wrong > 0 {
		return fmt.Errorf("%d object(s) contradict the Ovens 2024 calibration", wrong)
	}
	return nil
}

// verdictWord renders an agreement bit as the E20 column word.
func verdictWord(agree bool) string {
	if agree {
		return "agree"
	}
	return "disagree"
}
