package main

import (
	"strings"
	"testing"
)

func TestRunAll(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	// E6 verdicts: the sub-consensus objects pass, the consensus-grade
	// objects fail.
	for _, obj := range []string{"register", "WRN_3", "WRN_4", "WRN_5", "1sWRN_3"} {
		if !rowHas(out, obj, "PASS") {
			t.Errorf("%s row is not PASS:\n%s", obj, out)
		}
	}
	for _, obj := range []string{"WRN_2=SWAP", "swap", "test-and-set", "consensus-cell"} {
		if !rowHas(out, obj, "FAIL") {
			t.Errorf("%s row is not FAIL:\n%s", obj, out)
		}
	}
	// E11: the three protocols agree; the naive one does not.
	if !rowHas(out, "2-cons from SWAP", "true") {
		t.Error("SWAP consensus row not agreeing")
	}
	if !rowHas(out, "3 procs on WRN_2", "false") {
		t.Error("naive 3-process row should disagree")
	}
	if strings.Contains(out, "UNEXPECTED") {
		t.Errorf("verdicts diverged from the expected classification:\n%s", out)
	}
}

// TestRunParallelDeterministic: the tables must be byte-identical for
// every -parallel value.
func TestRunParallelDeterministic(t *testing.T) {
	var want strings.Builder
	if err := run(&want, "all", 1, false); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	for _, workers := range []int{2, 4} {
		var got strings.Builder
		if err := run(&got, "all", workers, false); err != nil {
			t.Fatalf("parallel=%d run: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Errorf("parallel=%d output differs from sequential", workers)
		}
	}
}

func rowHas(out, prefix, want string) bool {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) && strings.Contains(line, want) {
			return true
		}
	}
	return false
}

func TestRunSelection(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e11", 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(b.String(), "E6") {
		t.Error("e11 selection also ran e6")
	}
	if err := run(&b, "bogus", 0, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunStats: -stats runs the reduction cross-check and every row must
// match the exhaustive oracle.
func TestRunStats(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e11", 0, true); err != nil {
		t.Fatalf("run -stats: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "E11r") || !strings.Contains(out, "E4r") {
		t.Fatalf("stats tables missing:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("reduced engines diverge from the oracle:\n%s", out)
	}
	if !rowHas(out, "2-cons from SWAP", "match") || !rowHas(out, "3 procs on WRN_2", "match") {
		t.Errorf("E11r rows not matching:\n%s", out)
	}
	if !rowHas(out, "k=3 procs=5", "match") {
		t.Errorf("E4r procs=5 row missing:\n%s", out)
	}
}
