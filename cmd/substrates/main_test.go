package main

import (
	"strings"
	"testing"
)

func TestRunAll(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 20); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"E12", "E13", "E14", "E15", "E16",
		"snapshot", "renaming",
		"20/20", // every E12/E15 row must be fully valid
		"61/61", // the full crash sweep terminates
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// E14 must report zero violations.
	inE14 := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "E14") {
			inE14 = true
			continue
		}
		if strings.HasPrefix(line, "E15") {
			inE14 = false
		}
		if !inE14 {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] != "n" && fields[2] != "0" {
			t.Errorf("E14 violations in row: %s", line)
		}
	}
}

func TestRunSelection(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "e14", 5); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(b.String(), "E12") {
		t.Error("e14 selection also ran e12")
	}
	if err := run(&b, "zzz", 5); err == nil {
		t.Error("unknown experiment accepted")
	}
}
