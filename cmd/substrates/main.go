// Command substrates runs the substrate experiments: the AADGMS snapshot
// and renaming validity checks (E12), the safe-agreement/BG-simulation
// guarantees (E13), the immediate-snapshot properties (E14), and the
// universal-construction checks (E15). See EXPERIMENTS.md.
//
// Usage:
//
//	substrates [-exp e12|e13|e14|e15|all] [-runs N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"detobj/internal/bgsim"
	"detobj/internal/immediate"
	"detobj/internal/iterated"
	"detobj/internal/linearize"
	"detobj/internal/modelcheck"
	"detobj/internal/renaming"
	"detobj/internal/sim"
	"detobj/internal/snapshot"
	"detobj/internal/tasks"
	"detobj/internal/universal"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e12, e13, e14, e15, e16 or all")
	runs := flag.Int("runs", 200, "random schedules per configuration")
	flag.Parse()
	if err := run(os.Stdout, *exp, *runs); err != nil {
		fmt.Fprintln(os.Stderr, "substrates:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, runs int) error {
	type experiment struct {
		name string
		fn   func(io.Writer, int) error
	}
	all := []experiment{
		{"e12", expE12}, {"e13", expE13}, {"e14", expE14}, {"e15", expE15}, {"e16", expE16},
	}
	matched := false
	for _, e := range all {
		if exp == "all" || exp == e.name {
			matched = true
			if err := e.fn(w, runs); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// expE12: snapshot implementation linearizability and renaming validity.
func expE12(w io.Writer, runs int) error {
	fmt.Fprintln(w, "E12 Substrates: AADGMS snapshot from registers; (2k-1)-renaming from snapshots")
	fmt.Fprintln(w, "substrate   config        schedules  valid")
	spec := snapshotSpec(3)
	ok := 0
	for seed := int64(0); seed < int64(runs); seed++ {
		objects := map[string]sim.Object{}
		s := snapshot.NewImpl(objects, "R", 3, "⊥")
		progs := make([]sim.Program, 3)
		for i := 0; i < 3; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				v := fmt.Sprintf("p%d", i)
				ctx.BeginOp("SNAP", "update", i, v)
				s.Update(ctx, i, v)
				ctx.EndOp("SNAP", "update", nil)
				ctx.BeginOp("SNAP", "scan")
				view := s.Scan(ctx)
				ctx.EndOp("SNAP", "scan", view)
				return nil
			}
		}
		res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed)})
		if err != nil {
			return err
		}
		if linearize.Check(spec, linearize.Ops(res.Trace, "SNAP")).OK {
			ok++
		}
	}
	fmt.Fprintf(w, "%-11s %-13s %-10d %d/%d\n", "snapshot", "3 writers", runs, ok, runs)
	if ok != runs {
		fmt.Fprintln(w)
		return fmt.Errorf("e12: %d/%d snapshot runs not linearizable", runs-ok, runs)
	}

	ids := []int{19, 3, 27, 8}
	task := tasks.Renaming{Names: 2*len(ids) - 1}
	ok = 0
	for seed := int64(0); seed < int64(runs); seed++ {
		objects := map[string]sim.Object{}
		p := renaming.New(objects, "REN", 32)
		progs := make([]sim.Program, len(ids))
		inputs := map[int]sim.Value{}
		for i, id := range ids {
			inputs[i] = id
			progs[i] = p.Program(id)
		}
		res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed), MaxSteps: 1 << 18})
		if err != nil {
			return err
		}
		if task.Check(tasks.OutcomeFromResult(res, inputs)) == nil && res.AllDone() {
			ok++
		}
	}
	fmt.Fprintf(w, "%-11s %-13s %-10d %d/%d\n\n", "renaming", "4 of 32", runs, ok, runs)
	if ok != runs {
		return fmt.Errorf("e12: %d/%d renaming runs invalid", runs-ok, runs)
	}
	return nil
}

// snapshotSpec is the sequential snapshot specification over n slots.
func snapshotSpec(n int) linearize.Spec {
	return linearize.Spec{
		Init: func() any {
			s := make([]sim.Value, n)
			for i := range s {
				s[i] = "⊥"
			}
			return s
		},
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			cells := state.([]sim.Value)
			switch name {
			case "update":
				next := make([]sim.Value, n)
				copy(next, cells)
				next[args[0].(int)] = args[1]
				return next, nil
			case "scan":
				out := make([]sim.Value, n)
				copy(out, cells)
				return cells, out
			default:
				panic("unknown op " + name)
			}
		},
		Equal: func(observed, specified sim.Value) bool {
			if observed == nil && specified == nil {
				return true
			}
			a, aok := observed.([]sim.Value)
			b, bok := specified.([]sim.Value)
			if !aok || !bok || len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
	}
}

// expE13: BG simulation — consistency and the crash-point sweep.
func expE13(w io.Writer, _ int) error {
	fmt.Fprintln(w, "E13 BG simulation: n simulators run an m-process snapshot protocol via safe agreement")
	fmt.Fprintln(w, "sims  procs  crash-points  survivor-done  max-blocked  bound")
	proto := bgsim.Protocol{
		Rounds: 1,
		Write:  func(_ int, input sim.Value, _ [][]sim.Value) sim.Value { return input },
		Decide: func(_ int, _ sim.Value, scans [][]sim.Value) sim.Value {
			seen := 0
			for _, v := range scans[0] {
				if v != nil {
					seen++
				}
			}
			return seen
		},
	}
	inputs := []sim.Value{"a", "b", "c"}
	const sweep = 60
	done, maxBlocked := 0, 0
	for j := 0; j <= sweep; j++ {
		objects := map[string]sim.Object{}
		s := bgsim.New(objects, "BG", 2, inputs, proto, 50)
		order := make([]int, j)
		res, err := sim.Run(sim.Config{
			Objects:   objects,
			Programs:  s.Programs(),
			Scheduler: &sim.Fixed{Order: order, Fallback: sim.NewCrashing(nil, 0)},
			MaxSteps:  1 << 20,
		})
		if err != nil {
			return err
		}
		if res.Status[1] == sim.StatusDone {
			done++
			blocked := 0
			for _, o := range res.Outputs[1].(bgsim.Outputs) {
				if o == nil {
					blocked++
				}
			}
			if blocked > maxBlocked {
				maxBlocked = blocked
			}
		}
	}
	fmt.Fprintf(w, "%-5d %-6d %-13d %d/%d %14d  %d\n\n", 2, len(inputs), sweep+1, done, sweep+1, maxBlocked, 1)
	return nil
}

// expE14: immediate snapshot — exhaustive property verification.
func expE14(w io.Writer, _ int) error {
	fmt.Fprintln(w, "E14 Immediate snapshot (BG floors): exhaustive property verification")
	fmt.Fprintln(w, "n   executions  violations")
	task := tasks.ImmediateSnapshot{}
	for n := 2; n <= 3; n++ {
		n := n
		inputs := map[int]sim.Value{}
		for i := 0; i < n; i++ {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		violations := 0
		count, err := modelcheck.Explore(func() sim.Config {
			objects := map[string]sim.Object{}
			pr := immediate.New(objects, "IS", n)
			progs := make([]sim.Program, n)
			for i := 0; i < n; i++ {
				progs[i] = pr.Program(i, fmt.Sprintf("v%d", i))
			}
			return sim.Config{Objects: objects, Programs: progs}
		}, 1<<20, func(e modelcheck.Execution) error {
			o := tasks.Outcome{Inputs: inputs, Outputs: map[int]sim.Value{}}
			for i := 0; i < n; i++ {
				o.Outputs[i] = e.Result.Outputs[i]
			}
			if task.Check(o) != nil {
				violations++
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-3d %-11d %d\n", n, count, violations)
		if violations > 0 {
			fmt.Fprintln(w)
			return fmt.Errorf("e14: %d immediate-snapshot violations for n=%d", violations, n)
		}
	}
	fmt.Fprintln(w)
	return nil
}

// expE15: the universal construction — linearizable counter and helping.
func expE15(w io.Writer, runs int) error {
	fmt.Fprintln(w, "E15 Universal construction (Herlihy): objects from consensus cells")
	fmt.Fprintln(w, "check                         schedules  ok")
	spec := linearize.Spec{
		Init: func() any { return 0 },
		Apply: func(state any, name string, args []sim.Value) (any, sim.Value) {
			n := state.(int)
			if name == "inc" {
				return n + 1, n + 1
			}
			return n, n
		},
	}
	ok := 0
	for seed := int64(0); seed < int64(runs); seed++ {
		objects := map[string]sim.Object{}
		u := universal.New(objects, "U", 3, 16, spec)
		progs := make([]sim.Program, 3)
		for p := 0; p < 3; p++ {
			p := p
			progs[p] = func(ctx *sim.Ctx) sim.Value {
				sess := u.NewSession(p)
				ctx.BeginOp("CTR", "inc")
				out := sess.Apply(ctx, "inc")
				ctx.EndOp("CTR", "inc", out)
				return out
			}
		}
		res, err := sim.Run(sim.Config{Objects: objects, Programs: progs, Scheduler: sim.NewRandom(seed), MaxSteps: 1 << 18})
		if err != nil {
			return err
		}
		if res.AllDone() && linearize.Check(spec, linearize.Ops(res.Trace, "CTR")).OK {
			ok++
		}
	}
	fmt.Fprintf(w, "%-29s %-10d %d/%d\n\n", "universal counter linearizes", runs, ok, runs)
	if ok != runs {
		return fmt.Errorf("e15: %d/%d universal-counter runs not linearizable", runs-ok, runs)
	}
	return nil
}

// expE16: the protocol complex — distinct IIS outcome patterns equal the
// chromatic-subdivision simplex counts.
func expE16(w io.Writer, _ int) error {
	fmt.Fprintln(w, "E16 Iterated immediate snapshot: the protocol complex, counted")
	fmt.Fprintln(w, "n   rounds  executions  patterns  theory")
	cases := []struct{ n, rounds, want int }{
		{2, 1, 3}, {2, 2, 9}, {3, 1, 13},
	}
	for _, c := range cases {
		seen := map[string]bool{}
		count, err := modelcheck.Explore(func() sim.Config {
			objects := map[string]sim.Object{}
			pr := iterated.New(objects, "IIS", c.n, c.rounds)
			progs := make([]sim.Program, c.n)
			for i := 0; i < c.n; i++ {
				progs[i] = pr.Program(i, fmt.Sprintf("v%d", i))
			}
			return sim.Config{Objects: objects, Programs: progs}
		}, 1<<21, func(e modelcheck.Execution) error {
			seen[iterated.OutcomeSignature(e.Result.Outputs)] = true
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-3d %-7d %-11d %-9d %d\n", c.n, c.rounds, count, len(seen), c.want)
		if len(seen) != c.want {
			fmt.Fprintln(w)
			return fmt.Errorf("e16: n=%d rounds=%d produced %d outcome patterns, theory says %d", c.n, c.rounds, len(seen), c.want)
		}
	}
	fmt.Fprintln(w)
	return nil
}
