package main

import (
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 0, 5, 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"crash-during-op", "crash-recovery", "stall", "adaptive", "composed",
		"native seed 0 ok",
		"crash-restart", "repeated-restart", "adaptive-restart",
		"control: plain WRN broken",
		"5 seeds swept clean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepOutputIsReproducible: two identical sweeps must print byte-
// identical output — the sweep is a pure function of its seed range.
func TestSweepOutputIsReproducible(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, "all", 3, 3, 0, true); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if err := run(&b, "all", 3, 3, 0, true); err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output differs between identical invocations")
	}
}

// TestSweepParallelDeterministic: the sweep output is byte-identical for
// every worker count — per-seed buffers are replayed in seed order.
func TestSweepParallelDeterministic(t *testing.T) {
	var want strings.Builder
	if err := run(&want, "all", 0, 4, 1, true); err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		var got strings.Builder
		if err := run(&got, "all", 0, 4, workers, true); err != nil {
			t.Fatalf("parallel=%d sweep: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Errorf("parallel=%d output differs from sequential", workers)
		}
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "quantum", 0, 1, 0, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
