package main

import (
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", 0, 5, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"crash-during-op", "crash-recovery", "stall", "adaptive", "composed",
		"native seed 0 ok",
		"5 seeds swept clean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepOutputIsReproducible: two identical sweeps must print byte-
// identical output — the sweep is a pure function of its seed range.
func TestSweepOutputIsReproducible(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, "all", 3, 3, true); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if err := run(&b, "all", 3, 3, true); err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output differs between identical invocations")
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "quantum", 0, 1, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
