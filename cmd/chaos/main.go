// Command chaos sweeps seeds through the deterministic fault-injection
// harness (internal/chaos) on both substrates.
//
// For every seed the simulator scenarios run each adversary —
// crash-during-operation, crash-recovery, step-stall, the adaptive
// history-driven adversary, and a composed stack — over Algorithm 5,
// with replay verification on, checking that survivors finish and the
// crash history (pending operations included) linearizes. Each run is
// executed twice and its trace and chaos report compared byte for byte:
// a chaos run is identified by its seed alone.
//
// The native scenarios drive the lock-based election and set-consensus
// implementations with the seeded injector (yields, stalls and rare
// aborts at every chaos point) through the Bounded facade: every
// participant must return a decision or the typed ErrExhausted within
// its budget — never hang, never fail with anything else — and the
// safety bounds must hold among the survivors.
//
// On failure the driver prints the failing seed; re-running with
// -start <seed> -seeds 1 reproduces the run.
//
// Seeds sweep in parallel (-parallel, default GOMAXPROCS): every seed is
// a self-contained deterministic run, so each writes into its own buffer
// and the buffers are printed in seed order — the sweep's output and its
// first-failing-seed error are identical for every worker count.
//
// Usage:
//
//	chaos [-seeds N] [-start S] [-scenario sim|native|all] [-parallel P] [-v]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"detobj/internal/chaos"
	"detobj/internal/linearize"
	"detobj/internal/par"
	"detobj/internal/sim"
	"detobj/internal/wrn"
	"detobj/native"
)

func main() {
	seeds := flag.Int64("seeds", 20, "number of seeds to sweep")
	start := flag.Int64("start", 0, "first seed")
	scenario := flag.String("scenario", "all", "scenario to run: sim, native or all")
	parallel := flag.Int("parallel", 0, "worker goroutines for the seed sweep (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "dump the full chaos report of every simulator run")
	flag.Parse()
	if err := run(os.Stdout, *scenario, *start, *seeds, *parallel, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scenario string, start, seeds int64, workers int, verbose bool) error {
	doSim := scenario == "all" || scenario == "sim"
	doNative := scenario == "all" || scenario == "native"
	if !doSim && !doNative {
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	// One buffer per seed; par.ForEach guarantees every seed below the
	// failing one completes, so replaying the buffers in seed order and
	// stopping at the first error reproduces the sequential output.
	type slot struct {
		out bytes.Buffer
		err error
	}
	slots := make([]slot, seeds)
	_ = par.ForEach(int(seeds), workers, func(i int) error {
		seed := start + int64(i)
		s := &slots[i]
		if doSim {
			if err := simSweep(&s.out, seed, verbose); err != nil {
				s.err = fmt.Errorf("sim seed %d: %w (reproduce: chaos -scenario sim -start %d -seeds 1)", seed, err, seed)
				return s.err
			}
		}
		if doNative {
			if err := nativeSweep(&s.out, seed); err != nil {
				s.err = fmt.Errorf("native seed %d: %w (reproduce: chaos -scenario native -start %d -seeds 1)", seed, err, seed)
				return s.err
			}
		}
		return nil
	})
	for i := range slots {
		if _, err := io.Copy(w, &slots[i].out); err != nil {
			return err
		}
		if slots[i].err != nil {
			return slots[i].err
		}
	}
	fmt.Fprintf(w, "chaos: %d seeds swept clean\n", seeds)
	return nil
}

// simRun executes one adversary stack over Algorithm 5 with replay
// verification and returns the result plus the flattened trace.
func simRun(seed int64, k int, mk func(r *chaos.Report) sim.Scheduler, r *chaos.Report) (*sim.Result, wrn.Impl, string, error) {
	objects := map[string]sim.Object{}
	impl := wrn.NewImpl(objects, "LW", k)
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return impl.TracedWRN(ctx, i, 100+i)
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:      objects,
		Programs:     progs,
		Scheduler:    chaos.Instrument(mk(r), r),
		Seed:         seed,
		MaxSteps:     1 << 18,
		VerifyReplay: true,
	})
	if err != nil {
		return nil, impl, "", err
	}
	var b strings.Builder
	for _, e := range res.Trace.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return res, impl, b.String(), nil
}

// simSweep runs every simulator adversary for one seed, twice each,
// demanding byte-identical traces and reports across the two runs.
//
//detlint:hot
func simSweep(w io.Writer, seed int64, verbose bool) error {
	const k = 4
	victim := int(seed) % k
	stacks := []struct {
		name    string
		mk      func(r *chaos.Report) sim.Scheduler
		mayStop bool // the adversary crashes a process for good
	}{
		{"crash-during-op", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashDuringOp(sim.NewRandom(seed), r, victim, int(seed)%4)
		}, true},
		{"crash-recovery", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashRecovery(sim.NewRandom(seed), r, victim, 4, 30)
		}, false},
		{"stall", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewStall(sim.NewRandom(seed), r, victim, 2, 40)
		}, false},
		{"adaptive", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewAdaptive(seed, r)
		}, false},
		{"composed", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewStall(
				chaos.NewCrashDuringOp(chaos.NewAdaptive(seed, r), r, victim, 1),
				r, (victim+1)%k, 3, 20)
		}, true},
	}
	for _, s := range stacks {
		r1 := chaos.NewReport(seed)
		res, impl, trace1, err := simRun(seed, k, s.mk, r1)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		for i, st := range res.Status {
			if st == sim.StatusDone {
				continue
			}
			if s.mayStop && st == sim.StatusStopped && i == victim {
				continue
			}
			return fmt.Errorf("%s: process %d ended %v", s.name, i, st)
		}
		done, pending := linearize.OpsWithPending(res.Trace, impl.Name())
		if !linearize.Check(wrn.Spec(k), append(done, pending...)).OK {
			return fmt.Errorf("%s: chaos history not linearizable", s.name)
		}
		r2 := chaos.NewReport(seed)
		_, _, trace2, err := simRun(seed, k, s.mk, r2)
		if err != nil {
			return fmt.Errorf("%s (replay): %w", s.name, err)
		}
		if trace1 != trace2 {
			return fmt.Errorf("%s: trace not reproducible from seed", s.name)
		}
		if r1.String() != r2.String() {
			return fmt.Errorf("%s: report not reproducible from seed", s.name)
		}
		fmt.Fprintf(w, "sim seed %d %-16s steps=%d crashes=%d recoveries=%d maxstall=%d injections=%d\n",
			seed, s.name, res.Steps, r1.Crashes(), r1.Recoveries(), r1.MaxStall(), len(r1.Injections()))
		if verbose {
			fmt.Fprint(w, r1)
		}
	}
	return nil
}

// nativeSweep drives the native election through the seeded injector and
// the Bounded facade: every participant must decide or degrade to
// ErrExhausted within its deadline, and the election bound must hold
// among the survivors. The printed line carries only the seed's
// deterministic fault plan, so the sweep output reproduces byte for
// byte.
//
//detlint:hot
func nativeSweep(w io.Writer, seed int64) error {
	const k, m = 3, 16
	ids := []int{2, 9, 14}
	inj := chaos.NewInjector(seed, chaos.DefaultInjectorConfig, nil)
	e := native.NewElection(k, m)
	e.SetInjector(inj)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	decisions := make([]any, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for p, id := range ids {
		p, id := p, id
		wg.Add(1)
		//detlint:allow nodeterminism native-substrate participants are real goroutines by design; safety is checked after the deterministic fault plan, not the interleaving
		go func() {
			defer wg.Done()
			b := native.BoundedElection{E: e, B: native.Budget{Attempts: 3, Backoff: 2}}
			decisions[p], errs[p] = b.Propose(ctx, id, 1000+id)
		}()
	}
	wg.Wait()
	proposed := map[any]bool{}
	for _, id := range ids {
		proposed[1000+id] = true
	}
	distinct := map[any]bool{}
	for p, err := range errs {
		switch {
		case err == nil:
			if !proposed[decisions[p]] {
				return fmt.Errorf("participant %d decided unproposed %v", p, decisions[p])
			}
			distinct[decisions[p]] = true
		//detlint:allow hangsemantics the Bounded facade's documented degradation outcome is the one acceptable error here
		case errors.Is(err, native.ErrExhausted):
			// Graceful degradation: acceptable under injected aborts.
		default:
			return fmt.Errorf("participant %d failed with %v, want a decision or ErrExhausted", p, err)
		}
	}
	if len(distinct) > k-1 {
		return fmt.Errorf("%d distinct decisions, bound %d", len(distinct), k-1)
	}
	// Summarize the seed's deterministic fault plan over the election
	// sites: a pure function of the seed, independent of interleaving.
	var aborts, stalls, yields int
	for _, site := range []string{"election.propose", "election.rename.update", "election.rename.scan", "election.round", "election.rlx.won", "oneshot.locked"} {
		for _, f := range inj.Plan(site, 50) {
			switch f {
			case native.FaultAbort:
				aborts++
			case native.FaultStall:
				stalls++
			case native.FaultYield:
				yields++
			}
		}
	}
	fmt.Fprintf(w, "native seed %d ok plan(300 visits): aborts=%d stalls=%d yields=%d\n",
		seed, aborts, stalls, yields)
	return nil
}
