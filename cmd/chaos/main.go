// Command chaos sweeps seeds through the deterministic fault-injection
// harness (internal/chaos) on both substrates.
//
// For every seed the simulator scenarios run each adversary —
// crash-during-operation, crash-recovery, step-stall, the adaptive
// history-driven adversary, and a composed stack — over Algorithm 5,
// with replay verification on, checking that survivors finish and the
// crash history (pending operations included) linearizes. Each run is
// executed twice and its trace and chaos report compared byte for byte:
// a chaos run is identified by its seed alone.
//
// The native scenarios drive the lock-based election and set-consensus
// implementations with the seeded injector (yields, stalls and rare
// aborts at every chaos point) through the Bounded facade: every
// participant must return a decision or the typed ErrExhausted within
// its budget — never hang, never fail with anything else — and the
// safety bounds must hold among the survivors.
//
// The restart scenarios (E19) run the recoverable objects under the
// amnesiac crash-restart adversaries — single, repeated and adaptive —
// checking termination (every incarnation chain ends StatusDone), the
// fault accounting (every crash is matched by a restart; the recovery
// counter stays zero, these are restarts, not full-persistence
// recoveries), recoverable-WRN exactly-once semantics (each logical
// operation mutates the durable cells once, no matter how many
// incarnations retried it) and recoverable-register persistence safety
// (a staged-but-never-persisted write is never observed). A negative
// control sweeps the plain Algorithm 5 WRN under the same adversary and
// demands it break — if the control stops breaking, the adversary has
// lost its teeth and the scenario fails.
//
// On failure the driver prints the failing seed; re-running with
// -start <seed> -seeds 1 reproduces the run.
//
// Seeds sweep in parallel (-parallel, default GOMAXPROCS): every seed is
// a self-contained deterministic run, so each writes into its own buffer
// and the buffers are printed in seed order — the sweep's output and its
// first-failing-seed error are identical for every worker count.
//
// Usage:
//
//	chaos [-seeds N] [-start S] [-scenario sim|native|restart|all] [-parallel P] [-v]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"detobj/internal/chaos"
	"detobj/internal/linearize"
	"detobj/internal/par"
	"detobj/internal/recoverable"
	"detobj/internal/sim"
	"detobj/internal/wrn"
	"detobj/native"
)

func main() {
	seeds := flag.Int64("seeds", 20, "number of seeds to sweep")
	start := flag.Int64("start", 0, "first seed")
	scenario := flag.String("scenario", "all", "scenario to run: sim, native, restart or all")
	parallel := flag.Int("parallel", 0, "worker goroutines for the seed sweep (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "dump the full chaos report of every simulator run")
	flag.Parse()
	if err := run(os.Stdout, *scenario, *start, *seeds, *parallel, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scenario string, start, seeds int64, workers int, verbose bool) error {
	doSim := scenario == "all" || scenario == "sim"
	doNative := scenario == "all" || scenario == "native"
	doRestart := scenario == "all" || scenario == "restart"
	if !doSim && !doNative && !doRestart {
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	// One buffer per seed; par.ForEach guarantees every seed below the
	// failing one completes, so replaying the buffers in seed order and
	// stopping at the first error reproduces the sequential output.
	type slot struct {
		out bytes.Buffer
		err error
	}
	slots := make([]slot, seeds)
	_ = par.ForEach(int(seeds), workers, func(i int) error {
		seed := start + int64(i)
		s := &slots[i]
		if doSim {
			if err := simSweep(&s.out, seed, verbose); err != nil {
				s.err = fmt.Errorf("sim seed %d: %w (reproduce: chaos -scenario sim -start %d -seeds 1)", seed, err, seed)
				return s.err
			}
		}
		if doNative {
			if err := nativeSweep(&s.out, seed); err != nil {
				s.err = fmt.Errorf("native seed %d: %w (reproduce: chaos -scenario native -start %d -seeds 1)", seed, err, seed)
				return s.err
			}
		}
		if doRestart {
			if err := restartSweep(&s.out, seed, verbose); err != nil {
				s.err = fmt.Errorf("restart seed %d: %w (reproduce: chaos -scenario restart -start %d -seeds 1)", seed, err, seed)
				return s.err
			}
		}
		return nil
	})
	for i := range slots {
		if _, err := io.Copy(w, &slots[i].out); err != nil {
			return err
		}
		if slots[i].err != nil {
			return slots[i].err
		}
	}
	fmt.Fprintf(w, "chaos: %d seeds swept clean\n", seeds)
	return nil
}

// simRun executes one adversary stack over Algorithm 5 with replay
// verification and returns the result plus the flattened trace.
func simRun(seed int64, k int, mk func(r *chaos.Report) sim.Scheduler, r *chaos.Report) (*sim.Result, wrn.Impl, string, error) {
	objects := map[string]sim.Object{}
	impl := wrn.NewImpl(objects, "LW", k)
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			return impl.TracedWRN(ctx, i, 100+i)
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:      objects,
		Programs:     progs,
		Scheduler:    chaos.Instrument(mk(r), r),
		Seed:         seed,
		MaxSteps:     1 << 18,
		VerifyReplay: true,
	})
	if err != nil {
		return nil, impl, "", err
	}
	var b strings.Builder
	for _, e := range res.Trace.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return res, impl, b.String(), nil
}

// simSweep runs every simulator adversary for one seed, twice each,
// demanding byte-identical traces and reports across the two runs.
//
//detlint:hot
func simSweep(w io.Writer, seed int64, verbose bool) error {
	const k = 4
	victim := int(seed) % k
	stacks := []struct {
		name    string
		mk      func(r *chaos.Report) sim.Scheduler
		mayStop bool // the adversary crashes a process for good
	}{
		{"crash-during-op", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashDuringOp(sim.NewRandom(seed), r, victim, int(seed)%4)
		}, true},
		{"crash-recovery", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashRecovery(sim.NewRandom(seed), r, victim, 4, 30)
		}, false},
		{"stall", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewStall(sim.NewRandom(seed), r, victim, 2, 40)
		}, false},
		{"adaptive", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewAdaptive(seed, r)
		}, false},
		{"composed", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewStall(
				chaos.NewCrashDuringOp(chaos.NewAdaptive(seed, r), r, victim, 1),
				r, (victim+1)%k, 3, 20)
		}, true},
	}
	for _, s := range stacks {
		r1 := chaos.NewReport(seed)
		res, impl, trace1, err := simRun(seed, k, s.mk, r1)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		for i, st := range res.Status {
			if st == sim.StatusDone {
				continue
			}
			if s.mayStop && st == sim.StatusStopped && i == victim {
				continue
			}
			return fmt.Errorf("%s: process %d ended %v", s.name, i, st)
		}
		done, pending := linearize.OpsWithPending(res.Trace, impl.Name())
		if !linearize.Check(wrn.Spec(k), append(done, pending...)).OK {
			return fmt.Errorf("%s: chaos history not linearizable", s.name)
		}
		r2 := chaos.NewReport(seed)
		_, _, trace2, err := simRun(seed, k, s.mk, r2)
		if err != nil {
			return fmt.Errorf("%s (replay): %w", s.name, err)
		}
		if trace1 != trace2 {
			return fmt.Errorf("%s: trace not reproducible from seed", s.name)
		}
		if r1.String() != r2.String() {
			return fmt.Errorf("%s: report not reproducible from seed", s.name)
		}
		fmt.Fprintf(w, "sim seed %d %-16s steps=%d crashes=%d recoveries=%d maxstall=%d injections=%d\n",
			seed, s.name, res.Steps, r1.Crashes(), r1.Recoveries(), r1.MaxStall(), len(r1.Injections()))
		if verbose {
			fmt.Fprint(w, r1)
		}
	}
	return nil
}

// nativeSweep drives the native election through the seeded injector and
// the Bounded facade: every participant must decide or degrade to
// ErrExhausted within its deadline, and the election bound must hold
// among the survivors. The printed line carries only the seed's
// deterministic fault plan, so the sweep output reproduces byte for
// byte.
//
//detlint:hot
func nativeSweep(w io.Writer, seed int64) error {
	const k, m = 3, 16
	ids := []int{2, 9, 14}
	inj := chaos.NewInjector(seed, chaos.DefaultInjectorConfig, nil)
	e := native.NewElection(k, m)
	e.SetInjector(inj)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	decisions := make([]any, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for p, id := range ids {
		p, id := p, id
		wg.Add(1)
		//detlint:allow nodeterminism native-substrate participants are real goroutines by design; safety is checked after the deterministic fault plan, not the interleaving
		go func() {
			defer wg.Done()
			b := native.BoundedElection{E: e, B: native.Budget{Attempts: 3, Backoff: 2}}
			decisions[p], errs[p] = b.Propose(ctx, id, 1000+id)
		}()
	}
	wg.Wait()
	proposed := map[any]bool{}
	for _, id := range ids {
		proposed[1000+id] = true
	}
	distinct := map[any]bool{}
	for p, err := range errs {
		switch {
		case err == nil:
			if !proposed[decisions[p]] {
				return fmt.Errorf("participant %d decided unproposed %v", p, decisions[p])
			}
			distinct[decisions[p]] = true
		//detlint:allow hangsemantics the Bounded facade's documented degradation outcome is the one acceptable error here
		case errors.Is(err, native.ErrExhausted):
			// Graceful degradation: acceptable under injected aborts.
		default:
			return fmt.Errorf("participant %d failed with %v, want a decision or ErrExhausted", p, err)
		}
	}
	if len(distinct) > k-1 {
		return fmt.Errorf("%d distinct decisions, bound %d", len(distinct), k-1)
	}
	// Summarize the seed's deterministic fault plan over the election
	// sites: a pure function of the seed, independent of interleaving.
	var aborts, stalls, yields int
	for _, site := range []string{"election.propose", "election.rename.update", "election.rename.scan", "election.round", "election.rlx.won", "oneshot.locked"} {
		for _, f := range inj.Plan(site, 50) {
			switch f {
			case native.FaultAbort:
				aborts++
			case native.FaultStall:
				stalls++
			case native.FaultYield:
				yields++
			}
		}
	}
	fmt.Fprintf(w, "native seed %d ok plan(300 visits): aborts=%d stalls=%d yields=%d\n",
		seed, aborts, stalls, yields)
	return nil
}

// restartRun executes one amnesiac-restart adversary stack over the
// recoverable-WRN and recoverable-register workloads in a single
// simulator run with replay verification, returning the result, the
// core for exactly-once checks, and the flattened trace. Each of k
// processes performs one logical WRN operation (opid = process id)
// through the journaled recoverable WRN and one stage-persist-read pass
// through the recoverable register; Config.Recovery re-derives the
// WRN's volatile response cache from the durable journal.
func restartRun(seed int64, k int, mk func(r *chaos.Report) sim.Scheduler, r *chaos.Report) (*sim.Result, *recoverable.WRNCore, string, error) {
	objects := map[string]sim.Object{}
	wrh := recoverable.NewWRN(objects, "RW", k)
	objects["R"] = recoverable.NewRegister(nil)
	reg := recoverable.RegisterRef{Name: "R"}
	progs := make([]sim.Program, k)
	for i := 0; i < k; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) sim.Value {
			// Stage a per-incarnation value, persist it, then race the WRN.
			// A crash between write and persist must drop the staged value
			// without a trace in any later read.
			reg.Write(ctx, fmt.Sprintf("v%d.%d", i, ctx.Incarnation()))
			reg.Persist(ctx)
			// Bracket the logical WRN with BeginOp/EndOp: the adaptive
			// adversary arms its crashes on operation entry, and a crash
			// between the marks leaves a visibly wiped pending op.
			ctx.BeginOp("RW", "WRN", i, 100+i)
			out := wrh.WRN(ctx, i, i, 100+i)
			ctx.EndOp("RW", "WRN", out)
			return fmt.Sprintf("%v|%v", out, reg.Read(ctx))
		}
	}
	res, err := sim.Run(sim.Config{
		Objects:      objects,
		Programs:     progs,
		Scheduler:    chaos.Instrument(mk(r), r),
		Recovery:     wrh.Recovery(func(proc int) int { return proc }),
		Seed:         seed,
		MaxSteps:     1 << 18,
		VerifyReplay: true,
	})
	if err != nil {
		return nil, nil, "", err
	}
	core := objects["RW.core"].(*recoverable.WRNCore)
	var b strings.Builder
	for _, e := range res.Trace.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return res, core, b.String(), nil
}

// checkRegisterSafety walks the trace and verifies the recoverable
// register's persistence contract: a value staged by an incarnation
// that crashed before persisting it (a ghost) must never surface as the
// durable value of any later persist or read. Staged values embed the
// incarnation, so every ghost is unique across the run.
func checkRegisterSafety(res *sim.Result) error {
	pending := map[int]sim.Value{} // proc -> staged, unpersisted value
	ghosts := map[sim.Value]bool{} // wiped staged values
	for _, e := range res.Trace.Events {
		switch {
		case e.Kind == sim.EventStep && e.Object == "R" && e.Op == "write":
			pending[e.Proc] = e.Args[0]
		case e.Kind == sim.EventStep && e.Object == "R" && e.Op == "persist":
			delete(pending, e.Proc)
			if ghosts[e.Out] {
				return fmt.Errorf("persist by %d surfaced ghost value %v", e.Proc, e.Out)
			}
		case e.Kind == sim.EventStep && e.Object == "R" && e.Op == "read":
			if ghosts[e.Out] {
				return fmt.Errorf("read by %d observed ghost value %v", e.Proc, e.Out)
			}
		case e.Kind == sim.EventCrash:
			if v, ok := pending[e.Proc]; ok {
				ghosts[v] = true
				delete(pending, e.Proc)
			}
		}
	}
	return nil
}

// restartControl runs the plain Algorithm 5 WRN (no journal, no recovery
// step) under a deterministic crash-restart sweep and counts the crash
// points at which the amnesiac restart visibly breaks it: the victim's
// re-run either mutates the shared arrays again (exactly-once violated)
// or trips a bounded-use guard and hangs. The recoverable workload
// survives the same adversary family, so this control is what pins the
// breakage on the object, not on the sweep being too gentle.
func restartControl(k int) (broken, points int, err error) {
	const crashPoints = 9
	for crashAt := 0; crashAt < crashPoints; crashAt++ {
		objects := map[string]sim.Object{}
		impl := wrn.NewImpl(objects, "LW", k)
		progs := make([]sim.Program, k)
		for i := 0; i < k; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) sim.Value {
				return impl.WRN(ctx, i, 100+i)
			}
		}
		r := chaos.NewReport(int64(crashAt))
		res, runErr := sim.Run(sim.Config{
			Objects:      objects,
			Programs:     progs,
			Scheduler:    chaos.NewCrashRestart(sim.NewRoundRobin(), r, 0, crashAt, 0),
			MaxSteps:     1 << 16,
			VerifyReplay: true,
		})
		if runErr != nil {
			return 0, 0, fmt.Errorf("control crashAt=%d: %w", crashAt, runErr)
		}
		updates := 0
		for _, e := range res.Trace.Events {
			if e.Kind == sim.EventStep && e.Proc == 0 && e.Op == "update" {
				updates++
			}
		}
		hung := false
		for _, st := range res.Status {
			if st == sim.StatusHung {
				hung = true
			}
		}
		// One WRN pass updates R once and O once; a third update means the
		// restarted incarnation re-applied durable work.
		if updates > 2 || hung {
			broken++
		}
	}
	return broken, crashPoints, nil
}

// restartSweep runs every amnesiac crash-restart adversary for one seed
// (E19), twice each, demanding byte-identical traces and reports,
// termination of every incarnation chain, matched crash/restart
// accounting, recoverable-WRN exactly-once semantics and recoverable-
// register persistence safety — then checks the plain-WRN negative
// control still breaks under the same adversary family.
//
//detlint:hot
func restartSweep(w io.Writer, seed int64, verbose bool) error {
	const k = 3
	victim := int(seed) % k
	stacks := []struct {
		name string
		mk   func(r *chaos.Report) sim.Scheduler
		// wantCrashes is the stack's exact crash budget, or -1 when only
		// the upper bound maxCrashes applies (the adaptive adversary's
		// coin decides the exact count).
		wantCrashes int
		maxCrashes  int
	}{
		{"crash-restart", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewCrashRestart(sim.NewRandom(seed), r, victim, 2+int(seed)%3, 3)
		}, 1, 1},
		{"repeated-restart", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewRepeatedCrashRestart(sim.NewRandom(seed), r, victim, 2, 2, 3)
		}, 3, 3},
		{"adaptive-restart", func(r *chaos.Report) sim.Scheduler {
			return chaos.NewAdaptiveRestart(sim.NewRandom(seed), r, seed, 4)
		}, -1, 4},
	}
	for _, s := range stacks {
		r1 := chaos.NewReport(seed)
		res, core, trace1, err := restartRun(seed, k, s.mk, r1)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		for i, st := range res.Status {
			if st != sim.StatusDone {
				return fmt.Errorf("%s: process %d ended %v, want StatusDone after restarts", s.name, i, st)
			}
		}
		if r1.Recoveries() != 0 {
			return fmt.Errorf("%s: %d recoveries recorded; amnesiac restarts must not count as full-persistence recoveries", s.name, r1.Recoveries())
		}
		if r1.Restarts() != r1.Crashes() {
			return fmt.Errorf("%s: %d crashes but %d restarts; every crash must be matched by a restart", s.name, r1.Crashes(), r1.Restarts())
		}
		if s.wantCrashes >= 0 && r1.Crashes() != s.wantCrashes {
			return fmt.Errorf("%s: %d crashes, want exactly %d", s.name, r1.Crashes(), s.wantCrashes)
		}
		if r1.Crashes() > s.maxCrashes {
			return fmt.Errorf("%s: %d crashes exceed the budget %d", s.name, r1.Crashes(), s.maxCrashes)
		}
		for opid := 0; opid < k; opid++ {
			if n := core.ApplyCount(opid); n != 1 {
				return fmt.Errorf("%s: WRN op %d mutated the durable cells %d times, want exactly once", s.name, opid, n)
			}
		}
		if err := checkRegisterSafety(res); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		r2 := chaos.NewReport(seed)
		_, _, trace2, err := restartRun(seed, k, s.mk, r2)
		if err != nil {
			return fmt.Errorf("%s (replay): %w", s.name, err)
		}
		if trace1 != trace2 {
			return fmt.Errorf("%s: trace not reproducible from seed", s.name)
		}
		if r1.String() != r2.String() {
			return fmt.Errorf("%s: report not reproducible from seed", s.name)
		}
		fmt.Fprintf(w, "restart seed %d %-17s steps=%d crashes=%d restarts=%d recoveries=%d injections=%d\n",
			seed, s.name, res.Steps, r1.Crashes(), r1.Restarts(), r1.Recoveries(), len(r1.Injections()))
		if verbose {
			fmt.Fprint(w, r1)
		}
	}
	broken, points, err := restartControl(k)
	if err != nil {
		return fmt.Errorf("negative control: %w", err)
	}
	if broken == 0 {
		return fmt.Errorf("negative control: plain Algorithm 5 WRN survived all %d crash points; the restart adversary lost its teeth", points)
	}
	fmt.Fprintf(w, "restart seed %d control: plain WRN broken at %d/%d crash points\n", seed, broken, points)
	return nil
}
