package detobj

import (
	"detobj/internal/bgsim"
	"detobj/internal/chaos"
	"detobj/internal/consensus"
	"detobj/internal/core"
	"detobj/internal/election"
	"detobj/internal/immediate"
	"detobj/internal/iterated"
	"detobj/internal/linearize"
	"detobj/internal/modelcheck"
	"detobj/internal/recoverable"
	"detobj/internal/renaming"
	"detobj/internal/safeagreement"
	"detobj/internal/setconsensus"
	"detobj/internal/sim"
	"detobj/internal/snapshot"
	"detobj/internal/tasks"
	"detobj/internal/universal"
	"detobj/internal/wrn"
	"detobj/native"
)

// Simulator types: the asynchronous shared-memory model.
type (
	// Config describes one simulated run; see sim.Config.
	Config = sim.Config
	// Program is the sequential code of one simulated process.
	Program = sim.Program
	// Ctx is a process's handle to the simulated world.
	Ctx = sim.Ctx
	// Value is the domain of object states and operation values.
	Value = sim.Value
	// Object is a shared object (a sequential state machine).
	Object = sim.Object
	// Invocation is one operation request.
	Invocation = sim.Invocation
	// Response is an operation's outcome.
	Response = sim.Response
	// Result is a run's outcome.
	Result = sim.Result
	// Scheduler chooses the interleaving.
	Scheduler = sim.Scheduler
	// Trace is a run's recorded event history.
	Trace = sim.Trace
)

// Run executes one simulated run; see sim.Run.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// NewRoundRobin returns the fair cyclic scheduler.
func NewRoundRobin() Scheduler { return sim.NewRoundRobin() }

// NewRandomScheduler returns the seeded uniform scheduler.
func NewRandomScheduler(seed int64) Scheduler { return sim.NewRandom(seed) }

// NewFixedSchedule returns a scheduler replaying the given process order.
func NewFixedSchedule(order ...int) Scheduler { return sim.NewFixed(order...) }

// NewCrashingScheduler wraps inner so the listed processes are never
// scheduled again — the model's crash failures.
func NewCrashingScheduler(inner Scheduler, crashed ...int) Scheduler {
	return sim.NewCrashing(inner, crashed...)
}

// Amnesiac crash-restart fault model (see internal/sim/fault.go).
type (
	// Fault is one injected fault directive.
	Fault = sim.Fault
	// FaultKind names a fault directive's effect.
	FaultKind = sim.FaultKind
	// FaultInjector is the optional scheduler interface that injects
	// crash and restart directives into a run.
	FaultInjector = sim.FaultInjector
	// RecoverableObject is a shared object that splits its state into
	// durable and volatile halves; the volatile half is wiped when its
	// owner crashes.
	RecoverableObject = sim.Recoverable
	// RecoveryProc is the per-process recovery step the runtime runs
	// before a restarted incarnation resumes its program.
	RecoveryProc = sim.RecoveryProc
)

// Fault directive kinds.
const (
	FaultCrash   = sim.FaultCrash
	FaultRestart = sim.FaultRestart
)

// WRN objects (paper §3).
type (
	// WRN is the deterministic WriteAndReadNext object WRN_k.
	WRN = wrn.Object
	// OneShotWRN is the one-shot variant 1sWRN_k.
	OneShotWRN = wrn.OneShot
	// WRNRef is a typed handle to a (1s)WRN object in a run.
	WRNRef = wrn.Ref
	// WRNImpl is Algorithm 5: linearizable 1sWRN_k from strong set
	// election and registers.
	WRNImpl = wrn.Impl
	// RelaxedWRN is Algorithm 4's flag-guarded relaxed WRN_k wrapper.
	RelaxedWRN = wrn.Relaxed
	// WRNOperator abstracts anything offering the WRN operation — the
	// atomic object or an Algorithm 5 implementation.
	WRNOperator = wrn.Operator
)

// Bottom is the distinguished ⊥ value of WRN cells.
var Bottom = wrn.Bottom

// IsBottom reports whether v is ⊥.
func IsBottom(v Value) bool { return wrn.IsBottom(v) }

// NewWRN returns a fresh WRN_k object.
func NewWRN(k int) *WRN { return wrn.New(k) }

// NewOneShotWRN returns a fresh 1sWRN_k object.
func NewOneShotWRN(k int) *OneShotWRN { return wrn.NewOneShot(k) }

// Set consensus (paper §2, §4, §7.1).
type (
	// SetConsensusObject is the nondeterministic (n,k)-set consensus
	// object.
	SetConsensusObject = setconsensus.Object
	// Alg3 is the (k−1)-set consensus protocol for k participants out of
	// a large name space.
	Alg3 = setconsensus.Alg3
	// Alg6 is the m-set consensus protocol for n processes from WRN_k.
	Alg6 = setconsensus.Alg6
	// IndexFamily is Algorithm 3's family of index mappings.
	IndexFamily = setconsensus.IndexFamily
)

// NewSetConsensusObject returns a fresh (n,k)-set consensus object.
func NewSetConsensusObject(n, k int) *SetConsensusObject { return setconsensus.NewObject(n, k) }

// NewAlg2 registers a 1sWRN_k object and returns the k Algorithm 2
// programs, one per proposal.
func NewAlg2(objects map[string]Object, name string, vs []Value) []Program {
	return setconsensus.NewAlg2(objects, name, vs)
}

// NewAlg3 registers Algorithm 3's shared state and returns the protocol.
func NewAlg3(objects map[string]Object, name string, k, m int, family IndexFamily) Alg3 {
	a, _ := setconsensus.NewAlg3(objects, name, k, m, family)
	return a
}

// CoveringFamily returns the compact index-mapping family for Algorithm 3.
func CoveringFamily(k int) IndexFamily { return setconsensus.CoveringFamily(k) }

// NewAlg6 registers Algorithm 6's objects and returns the protocol.
func NewAlg6(objects map[string]Object, name string, n, k int) Alg6 {
	return setconsensus.NewAlg6(objects, name, n, k)
}

// Alg6Guarantee returns the agreement bound Algorithm 6 achieves.
func Alg6Guarantee(n, k int) int { return setconsensus.Guarantee(n, k) }

// NewWRNImpl registers Algorithm 5's shared state and returns the
// linearizable 1sWRN_k implementation.
func NewWRNImpl(objects map[string]Object, name string, k int) WRNImpl {
	return wrn.NewImpl(objects, name, k)
}

// NewWRNImplFromRegisters registers the registers-only variant of
// Algorithm 5 (strong set election implemented from snapshots rather
// than taken as an atomic object).
func NewWRNImplFromRegisters(objects map[string]Object, name string, k int) WRNImpl {
	return wrn.NewImplFromRegisters(objects, name, k)
}

// NewRelaxedWRN registers a fresh 1sWRN_k plus its k flag counters and
// returns Algorithm 4's relaxed handle along with the underlying
// one-shot object (exposed so callers can verify legal use).
func NewRelaxedWRN(objects map[string]Object, name string, k int) (RelaxedWRN, *OneShotWRN) {
	return wrn.NewRelaxed(objects, name, k)
}

// NewRelaxedWRNOver builds Algorithm 4's relaxed wrapper over an
// arbitrary WRN operator, registering only the flag counters.
func NewRelaxedWRNOver(objects map[string]Object, name string, k int, op WRNOperator) RelaxedWRN {
	return wrn.NewRelaxedOver(objects, name, k, op)
}

// NewAlg3Over registers Algorithm 3's shared state with a caller-chosen
// relaxed-WRN factory per instance — e.g. to run the protocol over
// implemented rather than atomic objects.
func NewAlg3Over(objects map[string]Object, name string, k, m int, family IndexFamily, mk func(instName string, k int) RelaxedWRN) Alg3 {
	return setconsensus.NewAlg3Over(objects, name, k, m, family, mk)
}

// NewStrongElection returns the (k, k−1)-strong set election object.
func NewStrongElection(k int) Object { return election.NewStrongObject(k) }

// NewRenaming registers a wait-free M-to-(2k−1) renaming protocol.
func NewRenaming(objects map[string]Object, name string, m int) renaming.Protocol {
	return renaming.New(objects, name, m)
}

// NewRenamingFromRegisters registers the registers-only renaming
// variant (snapshot implemented from registers, not atomic).
func NewRenamingFromRegisters(objects map[string]Object, name string, m int) renaming.Protocol {
	return renaming.NewFromRegisters(objects, name, m)
}

// Snapshot objects.
type (
	// SnapshotObject is the atomic n-component snapshot object.
	SnapshotObject = snapshot.Object
	// SnapshotImpl is the Afek et al. wait-free snapshot implementation
	// from registers.
	SnapshotImpl = snapshot.Impl
	// Snapshotter is the common update/scan interface of both.
	Snapshotter = snapshot.Snapshotter
)

// NewSnapshotObject returns a fresh atomic snapshot object (not yet
// registered in any run's object map).
func NewSnapshotObject(n int, initial Value) *SnapshotObject { return snapshot.NewObject(n, initial) }

// NewSnapshotImpl registers the register-based snapshot implementation
// and returns its handle.
func NewSnapshotImpl(objects map[string]Object, name string, n int, initial Value) SnapshotImpl {
	return snapshot.NewImpl(objects, name, n, initial)
}

// NewSnapshot registers an atomic snapshot object and returns its handle.
func NewSnapshot(objects map[string]Object, name string, n int, initial Value) Snapshotter {
	return snapshot.NewObjectHandle(objects, name, n, initial)
}

// Election-to-consensus reduction.
type (
	// ElectionProposer abstracts the propose step of an election object.
	ElectionProposer = election.Proposer
	// ConsensusFromElection is the consensus protocol built over a
	// strong election object.
	ConsensusFromElection = election.ConsensusFromElection
)

// NewConsensusFromElection registers the reduction from n-process
// consensus to strong election.
func NewConsensusFromElection(objects map[string]Object, name string, n int, elect ElectionProposer) ConsensusFromElection {
	return election.NewConsensusFromElection(objects, name, n, elect)
}

// UniversalConstruction is Herlihy's universal construction driven by
// consensus objects.
type UniversalConstruction = universal.Construction

// NewUniversal registers a universal construction for n processes over
// at most maxCells consensus cells, implementing the sequential spec.
func NewUniversal(objects map[string]Object, name string, n, maxCells int, spec LinSpec) UniversalConstruction {
	return universal.New(objects, name, n, maxCells, spec)
}

// Classic consensus objects (comparison points for the hierarchy).

// NewQueue returns a sequential FIFO queue object seeded with items.
func NewQueue(items ...Value) Object { return consensus.NewQueue(items...) }

// NewFetchAdd returns a fetch-and-add counter object.
func NewFetchAdd(initial int) Object { return consensus.NewFetchAdd(initial) }

// NewSwap returns a swap (read-modify-write exchange) object.
func NewSwap(initial Value) Object { return consensus.NewSwap(initial) }

// NewTestAndSet returns a one-shot test-and-set object.
func NewTestAndSet() Object { return consensus.NewTestAndSet() }

// NewConsensusCell returns an n-process write-once consensus cell.
func NewConsensusCell(n int) Object { return consensus.NewCell(n) }

// Tasks and checking.
type (
	// Task judges decision vectors.
	Task = tasks.Task
	// Outcome is a run's inputs and decisions.
	Outcome = tasks.Outcome
	// SetConsensusTask is the k-set consensus task.
	SetConsensusTask = tasks.SetConsensus
)

// OutcomeFromResult assembles an Outcome from a run result.
func OutcomeFromResult(res *Result, participants map[int]Value) Outcome {
	return tasks.OutcomeFromResult(res, participants)
}

// Linearizability checking.
type (
	// LinOp is one completed operation interval.
	LinOp = linearize.Op
	// LinSpec is a sequential specification.
	LinSpec = linearize.Spec
)

// LinOps extracts the completed logical operations on an object from a
// trace.
func LinOps(t Trace, object string) []LinOp { return linearize.Ops(t, object) }

// LinCheck searches for a linearization of ops under spec.
func LinCheck(spec LinSpec, ops []LinOp) bool { return linearize.Check(spec, ops).OK }

// WRNSpec returns the sequential specification of 1sWRN_k for LinCheck.
func WRNSpec(k int) LinSpec { return wrn.Spec(k) }

// Model checking.
type (
	// Factory builds fresh configurations for exhaustive exploration.
	Factory = modelcheck.Factory
	// Execution is one explored complete run.
	Execution = modelcheck.Execution
)

// Explore enumerates every execution of the configuration.
func Explore(f Factory, limit int, visit func(e Execution) error) (int, error) {
	return modelcheck.Explore(f, limit, visit)
}

// ExploreParallel is Explore across a worker pool (<= 0 workers means
// GOMAXPROCS) with a byte-identical visit sequence.
func ExploreParallel(f Factory, limit, workers int, visit func(e Execution) error) (int, error) {
	return modelcheck.ExploreParallel(f, limit, workers, visit)
}

// Hierarchy calculus (the paper's primary contribution).
type (
	// SetCons identifies an (N,K)-set consensus object.
	SetCons = core.SetCons
	// Ordering compares synchronization power.
	Ordering = core.Ordering
	// Family is the O(n,k) hierarchy at consensus level n.
	Family = core.Family
)

// Power-comparison orderings.
const (
	Equivalent   = core.Equivalent
	Stronger     = core.Stronger
	Weaker       = core.Weaker
	Incomparable = core.Incomparable
)

// Implements reports Theorem 41: whether (n,k)-set consensus is wait-free
// implementable from (m,j)-set consensus objects and registers.
func Implements(m, j, n, k int) bool { return core.Implements(m, j, n, k) }

// MinAgreement returns the optimal agreement bound for n processes from
// (m,j)-set consensus objects and registers.
func MinAgreement(n, m, j int) int { return core.MinAgreement(n, m, j) }

// Compare orders two set-consensus objects by implementability.
func Compare(a, b SetCons) Ordering { return core.Compare(a, b) }

// WRNEquivalent returns (k,k−1)-set consensus, the power of 1sWRN_k
// (Theorem 2).
func WRNEquivalent(k int) SetCons { return core.WRNEquivalent(k) }

// WRNConsensusNumber returns WRN_k's consensus number (Theorem 1).
func WRNConsensusNumber(k int) int { return core.WRNConsensusNumber(k) }

// NewSafeAgreement registers a Borowsky–Gafni safe-agreement instance for
// n proposer slots (the BG simulation building block).
func NewSafeAgreement(objects map[string]Object, name string, n int) safeagreement.Instance {
	return safeagreement.New(objects, name, n)
}

// BGProtocol is a round-based snapshot protocol for the BG simulation.
type BGProtocol = bgsim.Protocol

// NewBGSimulation registers a BG simulation of len(inputs) simulated
// processes by n simulators.
func NewBGSimulation(objects map[string]Object, name string, n int, inputs []Value, proto BGProtocol) bgsim.Simulation {
	return bgsim.New(objects, name, n, inputs, proto, 0)
}

// NewImmediateSnapshot registers a one-shot immediate snapshot instance
// for n participant slots.
func NewImmediateSnapshot(objects map[string]Object, name string, n int) immediate.Protocol {
	return immediate.New(objects, name, n)
}

// NewIteratedSnapshot registers an n-participant, r-round iterated
// immediate snapshot instance.
func NewIteratedSnapshot(objects map[string]Object, name string, n, rounds int) iterated.Protocol {
	return iterated.New(objects, name, n, rounds)
}

// PowerClasses partitions the set-consensus objects with n ≤ maxN into
// equivalence classes under mutual implementability; every class turns
// out to be a singleton — the paper's "wealth", quantified.
func PowerClasses(maxN int) [][]SetCons { return core.Classes(maxN) }

// Chaos harness: deterministic fault injection for both substrates (see
// internal/chaos and DESIGN.md, "Robustness & chaos testing").
type (
	// ChaosReport is the structured, seed-reproducible outcome of a
	// chaos run.
	ChaosReport = chaos.Report
	// ChaosInjection is one recorded fault.
	ChaosInjection = chaos.Injection
	// ChaosInjectorConfig sets per-mille fault rates for the native
	// injector's chaos points.
	ChaosInjectorConfig = chaos.InjectorConfig
)

// NewChaosReport returns an empty report for the given seed.
func NewChaosReport(seed int64) *ChaosReport { return chaos.NewReport(seed) }

// NewCrashDuringOp returns the adversary that kills victim after it has
// taken depth base-object steps inside a logical operation, leaving its
// partial writes visible.
func NewCrashDuringOp(inner Scheduler, r *ChaosReport, victim, depth int) Scheduler {
	return chaos.NewCrashDuringOp(inner, r, victim, depth)
}

// NewCrashRecovery returns the adversary that crashes victim at step
// crashAt and lets it re-enter, with its id and local state, window steps
// later.
func NewCrashRecovery(inner Scheduler, r *ChaosReport, victim, crashAt, window int) Scheduler {
	return chaos.NewCrashRecovery(inner, r, victim, crashAt, window)
}

// NewCrashRestart returns the single-crash amnesiac-restart adversary:
// victim crashes at step crashAt, losing all volatile state, and re-runs
// its program from the top (behind Config.Recovery) window steps later.
func NewCrashRestart(inner Scheduler, r *ChaosReport, victim, crashAt, window int) Scheduler {
	return chaos.NewCrashRestart(inner, r, victim, crashAt, window)
}

// NewRepeatedCrashRestart returns the repeated amnesiac-restart
// adversary: victim is crashed after every depth of its own steps,
// restarted window steps later, times crashes in total.
func NewRepeatedCrashRestart(inner Scheduler, r *ChaosReport, victim, depth, window, times int) Scheduler {
	return chaos.NewRepeatedCrashRestart(inner, r, victim, depth, window, times)
}

// NewAdaptiveRestart returns the seeded, history-driven amnesiac
// adversary: it arms crashes as operations open and fires them
// mid-operation, up to maxCrashes in total, always restarting victims.
func NewAdaptiveRestart(inner Scheduler, r *ChaosReport, seed int64, maxCrashes int) Scheduler {
	return chaos.NewAdaptiveRestart(inner, r, seed, maxCrashes)
}

// Recoverable objects for the amnesiac crash-restart model (see
// internal/recoverable and experiments E19/E20).

// NewRecoverableRegister returns the recoverable register: writes stage
// in a volatile per-process buffer and survive a crash only once
// explicitly persisted.
func NewRecoverableRegister(initial Value) Object { return recoverable.NewRegister(initial) }

// NewRecoverableTestAndSet returns the recoverable test-and-set: the
// winner's identity is durable and "tas" is idempotent per process, so a
// restarted winner re-learns its win.
func NewRecoverableTestAndSet() Object { return recoverable.NewTestAndSet() }

// NewVolatileScratch returns an all-volatile per-process scratchpad;
// algorithm code routes volatile local state through one so crashes wipe
// it deterministically.
func NewVolatileScratch() Object { return recoverable.NewScratch() }

// RecoverableWRN is the journaled recoverable WRN_k handle.
type RecoverableWRN = recoverable.WRN

// NewRecoverableWRN registers a recoverable WRN_k (durable journaled
// core plus volatile response cache) and returns its handle; its
// Recovery method yields the RecoveryProc that re-derives the cache from
// the journal.
func NewRecoverableWRN(objects map[string]Object, name string, k int) RecoverableWRN {
	return recoverable.NewWRN(objects, name, k)
}

// NewStall returns the adversary that starves victim during scheduler
// steps [from, from+window).
func NewStall(inner Scheduler, r *ChaosReport, victim, from, window int) Scheduler {
	return chaos.NewStall(inner, r, victim, from, window)
}

// NewAdaptiveAdversary returns the seeded, history-driven adversary.
func NewAdaptiveAdversary(seed int64, r *ChaosReport) Scheduler {
	return chaos.NewAdaptive(seed, r)
}

// InstrumentScheduler wraps a scheduler stack (outermost) so every
// scheduled step lands in the report's per-process histogram.
func InstrumentScheduler(sched Scheduler, r *ChaosReport) Scheduler {
	return chaos.Instrument(sched, r)
}

// NewChaosInjector returns the seeded native-substrate injector; its
// decision at the nth visit of a chaos point is a pure function of
// (seed, site, n). Pass it to the native objects' SetInjector methods.
func NewChaosInjector(seed int64, cfg ChaosInjectorConfig, r *ChaosReport) native.Injector {
	return chaos.NewInjector(seed, cfg, r)
}

// DefaultChaosInjectorConfig is the chaos driver's native fault profile:
// aggressive scheduling noise, rare aborts.
var DefaultChaosInjectorConfig = chaos.DefaultInjectorConfig

// Bounded-wait graceful degradation: the sanctioned crossing of the
// paper's hang-on-exhaustion boundary. See DESIGN.md for why degrading
// detectably changes an object's power.

// ErrExhausted is the typed error returned by the Bounded wrappers of
// both substrates when an operation's budget — steps, attempts or a
// context deadline — is spent. errors.Is(err, ErrExhausted) identifies
// it across the facade.
//
//detlint:allow hangsemantics re-export of the documented hang-vs-error boundary sentinel
var ErrExhausted = native.ErrExhausted

// NewBounded wraps a simulator object so that hangs and over-budget
// callers receive ErrExhausted instead of parking forever. budget bounds
// each process's steps through the wrapper; 0 means unlimited.
func NewBounded(inner Object, budget int) Object { return chaos.NewBounded(inner, budget) }

// Exhausted reports whether a value returned through a Bounded wrapper
// is the typed exhaustion error.
func Exhausted(v Value) bool { return chaos.Exhausted(v) }
