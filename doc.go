// Package detobj is a Go reproduction of the theory of deterministic
// sub-consensus objects from "Deterministic Objects: Life Beyond
// Consensus" (Afek, Ellen, Gafni; PODC 2016) and its companion
// "A Wealth of Sub-Consensus Deterministic Objects" (Daian, Losa, Afek,
// Gafni; DISC 2018).
//
// The library has three layers, all re-exported here for downstream use:
//
//   - A deterministic lockstep simulator of the asynchronous shared-memory
//     model (Config, Run, schedulers, traces), with base objects
//     (registers, counters, snapshots) and task checkers (consensus,
//     k-set consensus, election, renaming).
//
//   - The paper's objects and algorithms: the deterministic WRN_k and
//     1sWRN_k objects, Algorithm 2/3/6 set-consensus protocols, the
//     relaxed WRN wrapper, and the linearizable 1sWRN implementation from
//     strong set election, plus a linearizability checker and a model
//     checker (exhaustive exploration, valency analysis, and the
//     mechanized Lemma 38 indistinguishability engine).
//
//   - The synchronization-power calculus: the Theorem 41 implementability
//     predicate, the 1sWRN hierarchy between registers and 2-consensus
//     (Corollary 42), and the O(n,k) conjunction-object hierarchy at every
//     consensus level n ≥ 2.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced results.
package detobj
